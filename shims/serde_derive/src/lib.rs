//! Offline stand-in for crates.io `serde_derive`.
//!
//! Derives the shim `serde::Serialize` / `serde::Deserialize` traits (a
//! JSON-value model, see `shims/serde`) for the data shapes this workspace
//! uses: named-field structs, tuple structs, and enums whose variants are
//! unit, named-field or tuple. Generics and `#[serde(...)]` attributes are
//! not supported — the derive fails loudly on them rather than silently
//! producing wrong code.
//!
//! There is no `syn`/`quote` in the offline container, so the input is
//! parsed directly from the `proc_macro` token stream; enum payloads follow
//! serde's external-tagging conventions (`"Variant"` for unit variants,
//! `{"Variant": ...}` for data-carrying ones).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The field shape of a struct or of one enum variant.
enum Fields {
    /// `{ a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `( T, U )` — number of positional fields.
    Tuple(usize),
    /// No payload.
    Unit,
}

/// A parsed `struct` or `enum` item.
struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

/// Derives the shim `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed.kind {
        Kind::Struct(fields) => serialize_fields(fields, "self."),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(variant, fields)| {
                    let path = format!("{}::{}", parsed.name, variant);
                    match fields {
                        Fields::Unit => format!(
                            "{path} => ::serde::Value::Str(::std::string::String::from(\"{variant}\")),"
                        ),
                        Fields::Named(names) => {
                            let binders = names.join(", ");
                            let inner = named_object(names, "");
                            format!(
                                "{path} {{ {binders} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{variant}\"), {inner})]),"
                            )
                        }
                        Fields::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(x0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                            };
                            format!(
                                "{path}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{variant}\"), {inner})]),",
                                binders.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let output = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}",
        parsed.name
    );
    output.parse().expect("derived Serialize impl must parse")
}

/// Derives the shim `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.kind {
        Kind::Struct(fields) => format!(
            "::std::result::Result::Ok({})",
            construct(name, fields, "value")
        ),
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(variant, _)| {
                    format!("\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(variant, fields)| {
                    format!(
                        "\"{variant}\" => ::std::result::Result::Ok({}),",
                        construct(&format!("{name}::{variant}"), fields, "inner")
                    )
                })
                .collect();
            let mut code = String::new();
            if !unit_arms.is_empty() {
                code.push_str(&format!(
                    "if let ::serde::Value::Str(s) = value {{\n\
                         return match s.as_str() {{\n\
                             {}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                         }};\n\
                     }}\n",
                    unit_arms.join("\n")
                ));
            }
            if data_arms.is_empty() {
                code.push_str(&format!(
                    "::std::result::Result::Err(::serde::Error::custom(\
                     \"expected a {name} variant name\"))"
                ));
            } else {
                code.push_str(&format!(
                    "let (tag, inner) = ::serde::enum_parts(value)?;\n\
                     match tag {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                     }}",
                    data_arms.join("\n")
                ));
            }
            code
        }
    };
    let output = format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    );
    output.parse().expect("derived Deserialize impl must parse")
}

/// `Value::Object(vec![("f", to_value(&prefix f)), ...])` for named fields.
/// With an empty prefix the field identifiers themselves are the bindings
/// (enum-variant destructuring); with `self.` they are field accesses.
fn named_object(names: &[String], prefix: &str) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| {
            let access = if prefix.is_empty() {
                f.clone()
            } else {
                format!("&{prefix}{f}")
            };
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({access}))"
            )
        })
        .collect();
    format!(
        "::serde::Value::Object(::std::vec![{}])",
        entries.join(", ")
    )
}

/// Serialization expression for a struct's own fields.
fn serialize_fields(fields: &Fields, prefix: &str) -> String {
    match fields {
        Fields::Named(names) => named_object(names, prefix),
        Fields::Tuple(1) => format!("::serde::Serialize::to_value(&{prefix}0)"),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&{prefix}{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    }
}

/// Construction expression `Path { f: from_value(...)?, .. }` reading each
/// field of `source` (a `&Value` expression).
fn construct(path: &str, fields: &Fields, source: &str) -> String {
    match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::obj_field({source}, \"{f}\")?)?"
                    )
                })
                .collect();
            format!("{path} {{ {} }}", inits.join(", "))
        }
        Fields::Tuple(1) => format!("{path}(::serde::Deserialize::from_value({source})?)"),
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(\
                         {source}.as_array().and_then(|a| a.get({i})).ok_or_else(|| \
                         ::serde::Error::custom(\"tuple payload too short\"))?)?"
                    )
                })
                .collect();
            format!("{path}({})", inits.join(", "))
        }
        Fields::Unit => path.to_string(),
    }
}

/// Parses the derive input item down to names and field shapes.
fn parse_input(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    let keyword = loop {
        match it
            .next()
            .expect("derive input ended before `struct`/`enum`")
        {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                it.next(); // the [...] attribute group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)`, `pub(in ...)`: skip a following
                // parenthesised group if present.
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
            }
            other => panic!("unexpected token before item keyword: {other}"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    let kind = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if keyword == "struct" {
                Kind::Struct(Fields::Named(parse_named_fields(g.stream())))
            } else {
                Kind::Enum(parse_variants(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(
                keyword, "struct",
                "parenthesised body implies a tuple struct"
            );
            Kind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
        other => panic!("unexpected item body for `{name}`: {other:?}"),
    };
    Input { name, kind }
}

/// Extracts field names from `{ a: T, b: U }`, skipping attributes,
/// visibility and the type tokens (tracking `<...>` depth so commas inside
/// generic arguments do not split fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip attributes (doc comments included) and visibility.
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                    it.next(); // the [...] group
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    it.next();
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                // Skip `: Type` up to the next top-level comma.
                let mut angle_depth = 0i32;
                for tt in it.by_ref() {
                    if let TokenTree::Punct(p) = tt {
                        match p.as_char() {
                            '<' => angle_depth += 1,
                            '>' => angle_depth -= 1,
                            ',' if angle_depth == 0 => break,
                            _ => {}
                        }
                    }
                }
            }
            Some(other) => panic!("expected field name, found {other}"),
        }
    }
    names
}

/// Counts the fields of a tuple body `( T, U, ... )`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_tokens = false;
                }
                _ => saw_tokens = true,
            },
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

/// Parses enum variants: `Name`, `Name { ... }` or `Name( ... )`.
fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip attributes (doc comments) before the variant name.
        while let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '#' {
                it.next();
                it.next();
            } else {
                break;
            }
        }
        let name = match it.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected variant name, found {other}"),
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                it.next();
                Fields::Named(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                it.next();
                Fields::Tuple(count_tuple_fields(inner))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Consume the trailing comma, if any; discriminants are unsupported.
        match it.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => panic!("unexpected token after variant: {other}"),
        }
    }
    variants
}
