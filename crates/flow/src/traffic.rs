//! Traffic matrices: the demand side of the flow-level model.
//!
//! A traffic matrix assigns a non-negative weight to every ordered pair of
//! leaves. Weights are in arbitrary units (bytes for application patterns,
//! 1.0 per pair for uniform traffic); all flow-model outputs are linear in
//! them, so ratios (congestion ratio, normalized load shapes) are
//! unit-free.
//!
//! The all-pairs uniform matrix is kept symbolic ([`TrafficMatrix::uniform`])
//! rather than materialised: on a 16 384-leaf machine it would hold ~2.7e8
//! entries, while the closed-form load computation only ever needs the
//! per-level pair counts.

use serde::{Deserialize, Serialize};
use xgft_patterns::{ConnectivityMatrix, Pattern};

/// A weighted set of (source, destination) demands over `n` leaves.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMatrix {
    num_leaves: usize,
    kind: TrafficKind,
}

#[derive(Debug, Clone, PartialEq)]
enum TrafficKind {
    /// Every ordered pair of distinct leaves demands `weight` units.
    Uniform { weight: f64 },
    /// Explicit weighted flows (self-flows already removed).
    Flows(Vec<(usize, usize, f64)>),
}

impl TrafficMatrix {
    /// Uniform all-pairs traffic: one unit per ordered pair of distinct
    /// leaves.
    pub fn uniform(num_leaves: usize) -> Self {
        Self::uniform_weighted(num_leaves, 1.0)
    }

    /// Uniform all-pairs traffic with `weight` units per pair.
    pub fn uniform_weighted(num_leaves: usize, weight: f64) -> Self {
        assert!(weight >= 0.0, "traffic weights must be non-negative");
        TrafficMatrix {
            num_leaves,
            kind: TrafficKind::Uniform { weight },
        }
    }

    /// Explicit flows. Self-flows are dropped (they never enter the
    /// network), mirroring the simulator's local-copy semantics.
    ///
    /// # Panics
    /// Panics if a flow references a leaf `>= num_leaves` or has a negative
    /// weight.
    pub fn from_flows(
        num_leaves: usize,
        flows: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let flows: Vec<(usize, usize, f64)> = flows
            .into_iter()
            .inspect(|&(s, d, w)| {
                assert!(s < num_leaves, "source {s} out of range");
                assert!(d < num_leaves, "destination {d} out of range");
                assert!(w >= 0.0, "traffic weights must be non-negative");
            })
            .filter(|&(s, d, _)| s != d)
            .collect();
        TrafficMatrix {
            num_leaves,
            kind: TrafficKind::Flows(flows),
        }
    }

    /// The union of a pattern's phases as a traffic matrix over `num_leaves`
    /// leaves (ranks map to leaves by identity, as in the replay engine),
    /// with byte counts as weights.
    ///
    /// # Panics
    /// Panics if the pattern has more tasks than there are leaves.
    pub fn from_pattern(pattern: &Pattern, num_leaves: usize) -> Self {
        Self::from_connectivity(&pattern.combined(), num_leaves)
    }

    /// A single connectivity matrix as a traffic matrix, bytes as weights.
    pub fn from_connectivity(matrix: &ConnectivityMatrix, num_leaves: usize) -> Self {
        assert!(
            matrix.num_nodes() <= num_leaves,
            "pattern has {} tasks but the machine only has {num_leaves} leaves",
            matrix.num_nodes()
        );
        Self::from_flows(
            num_leaves,
            matrix
                .network_flows()
                .map(|f| (f.src, f.dst, f.bytes as f64)),
        )
    }

    /// Number of leaves the matrix is defined over.
    pub fn num_leaves(&self) -> usize {
        self.num_leaves
    }

    /// The uniform per-pair weight, if this is the symbolic all-pairs
    /// matrix.
    pub fn uniform_weight(&self) -> Option<f64> {
        match self.kind {
            TrafficKind::Uniform { weight } => Some(weight),
            TrafficKind::Flows(_) => None,
        }
    }

    /// The explicit flows, if materialised.
    pub fn flows(&self) -> Option<&[(usize, usize, f64)]> {
        match &self.kind {
            TrafficKind::Uniform { .. } => None,
            TrafficKind::Flows(flows) => Some(flows),
        }
    }

    /// Total demand across all pairs.
    pub fn total_weight(&self) -> f64 {
        match &self.kind {
            TrafficKind::Uniform { weight } => {
                let n = self.num_leaves as f64;
                weight * n * (n - 1.0)
            }
            TrafficKind::Flows(flows) => flows.iter().map(|&(_, _, w)| w).sum(),
        }
    }

    /// Visit every (source, destination, weight) demand. For the symbolic
    /// uniform matrix this enumerates all `n(n-1)` ordered pairs — callers
    /// on large machines should prefer the closed-form paths that never
    /// materialise pairs.
    pub fn for_each_flow(&self, mut f: impl FnMut(usize, usize, f64)) {
        match &self.kind {
            TrafficKind::Uniform { weight } => {
                for s in 0..self.num_leaves {
                    for d in 0..self.num_leaves {
                        if s != d {
                            f(s, d, *weight);
                        }
                    }
                }
            }
            TrafficKind::Flows(flows) => {
                for &(s, d, w) in flows {
                    f(s, d, w);
                }
            }
        }
    }
}

/// A named family of traffic matrices, instantiable at any machine size —
/// the traffic axis of the parallel sweep engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficSpec {
    /// One unit per ordered pair (the classic MCL setting).
    Uniform,
    /// Cyclic shift by `offset` (a permutation; unit weights).
    Shift {
        /// The shift distance in leaf numbering.
        offset: usize,
    },
    /// Bit-reversal permutation (requires a power-of-two leaf count).
    BitReversal,
    /// A fixed application pattern (byte counts as weights); ranks map to
    /// leaves by identity.
    Pattern(Pattern),
}

impl TrafficSpec {
    /// Display name used in sweep tables.
    pub fn name(&self) -> String {
        match self {
            TrafficSpec::Uniform => "uniform".to_string(),
            TrafficSpec::Shift { offset } => format!("shift-{offset}"),
            TrafficSpec::BitReversal => "bit-reversal".to_string(),
            TrafficSpec::Pattern(p) => p.name().to_string(),
        }
    }

    /// Instantiate the family for a machine with `num_leaves` leaves.
    pub fn matrix(&self, num_leaves: usize) -> TrafficMatrix {
        match self {
            TrafficSpec::Uniform => TrafficMatrix::uniform(num_leaves),
            TrafficSpec::Shift { offset } => TrafficMatrix::from_pattern(
                &xgft_patterns::generators::shift(num_leaves, *offset, 1),
                num_leaves,
            ),
            TrafficSpec::BitReversal => TrafficMatrix::from_pattern(
                &xgft_patterns::generators::bit_reversal(num_leaves, 1),
                num_leaves,
            ),
            TrafficSpec::Pattern(p) => TrafficMatrix::from_pattern(p, num_leaves),
        }
    }

    /// The connectivity matrix pattern-aware schemes are constructed from.
    /// For [`TrafficSpec::Uniform`] this materialises all pairs — intended
    /// for small instances only.
    pub fn connectivity(&self, num_leaves: usize) -> ConnectivityMatrix {
        match self {
            TrafficSpec::Uniform => {
                let mut m = ConnectivityMatrix::new(num_leaves);
                for s in 0..num_leaves {
                    for d in 0..num_leaves {
                        if s != d {
                            m.add_flow(s, d, 1);
                        }
                    }
                }
                m
            }
            TrafficSpec::Shift { offset } => {
                xgft_patterns::generators::shift(num_leaves, *offset, 1).combined()
            }
            TrafficSpec::BitReversal => {
                xgft_patterns::generators::bit_reversal(num_leaves, 1).combined()
            }
            TrafficSpec::Pattern(p) => p.combined(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft_patterns::generators;

    #[test]
    fn uniform_matrix_totals() {
        let t = TrafficMatrix::uniform(16);
        assert_eq!(t.num_leaves(), 16);
        assert_eq!(t.uniform_weight(), Some(1.0));
        assert!(t.flows().is_none());
        assert!((t.total_weight() - (16.0 * 15.0)).abs() < 1e-9);
        let mut count = 0usize;
        t.for_each_flow(|s, d, w| {
            assert_ne!(s, d);
            assert_eq!(w, 1.0);
            count += 1;
        });
        assert_eq!(count, 16 * 15);
    }

    #[test]
    fn pattern_matrix_uses_bytes_and_drops_self_flows() {
        let p = generators::shift(8, 0, 4096); // offset 0: all self-flows
        let t = TrafficMatrix::from_pattern(&p, 8);
        assert_eq!(t.total_weight(), 0.0);
        let p = generators::shift(8, 3, 4096);
        let t = TrafficMatrix::from_pattern(&p, 8);
        assert_eq!(t.flows().unwrap().len(), 8);
        assert!((t.total_weight() - 8.0 * 4096.0).abs() < 1e-9);
    }

    #[test]
    fn pattern_smaller_than_machine_is_accepted() {
        let p = generators::shift(8, 1, 1);
        let t = TrafficMatrix::from_pattern(&p, 64);
        assert_eq!(t.num_leaves(), 64);
        assert_eq!(t.flows().unwrap().len(), 8);
    }

    #[test]
    #[should_panic(expected = "tasks")]
    fn pattern_larger_than_machine_is_rejected() {
        let p = generators::shift(32, 1, 1);
        let _ = TrafficMatrix::from_pattern(&p, 16);
    }

    #[test]
    fn traffic_spec_names_and_instantiation() {
        assert_eq!(TrafficSpec::Uniform.name(), "uniform");
        assert_eq!(TrafficSpec::Shift { offset: 4 }.name(), "shift-4");
        let m = TrafficSpec::Shift { offset: 4 }.matrix(16);
        assert_eq!(m.flows().unwrap().len(), 16);
        let conn = TrafficSpec::Uniform.connectivity(4);
        assert_eq!(conn.num_flows(), 12);
        let br = TrafficSpec::BitReversal.matrix(8);
        assert!(br.flows().unwrap().len() <= 8);
    }
}
