//! Progressive tree-slimming sweeps (the x-axis of Figs. 2 and 5).
//!
//! A sweep runs one trace over the family `XGFT(2; k, k; 1, w2)` for a range
//! of `w2` values and a set of routing algorithms, reporting the slowdown
//! relative to the Full-Crossbar for each point. Randomised algorithms are
//! sampled over a list of seeds and summarised as boxplots, exactly like the
//! paper's Figs. 4 and 5 (40–60 seeds per box in the paper; the number is a
//! parameter here).
//!
//! Independent (topology, algorithm, seed) runs are embarrassingly parallel;
//! a sweep is decomposed into [`SweepShard`]s — one per (topology,
//! algorithm, seed) triple — which Rayon spreads over cores, as the
//! HPC-parallel guidance recommends parallelising at the outermost loop.
//! Shard order (and therefore every aggregate) is a pure function of the
//! configuration: results are identical whatever the worker count. The
//! [`crate::campaign`] module layers deterministic per-shard seed streams
//! and serde-JSON campaign output on top of the same machinery.

use crate::slowdown::{run_on_crossbar, run_on_xgft_with_source, run_reusing_sim};
use crate::stats::BoxplotStats;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use xgft_core::{
    ColoredRouting, CompactRoutes, CompactScheme, CompiledRouteTable, DModK, RandomNcaDown,
    RandomNcaUp, RandomRouting, RoutingAlgorithm, SModK,
};
use xgft_netsim::{NetworkConfig, NetworkSim};
use xgft_patterns::Pattern;
use xgft_topo::{Xgft, XgftSpec};
use xgft_tracesim::{workloads, ReplayEngine, Trace};

/// Which routing algorithms a sweep evaluates. Deterministic algorithms are
/// run once per topology; seeded algorithms once per seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlgorithmSpec {
    /// Static random NCA selection (seeded).
    Random,
    /// Source-mod-k (deterministic).
    SModK,
    /// Destination-mod-k (deterministic).
    DModK,
    /// Random NCA Up — the paper's proposal, source-guided (seeded).
    RandomNcaUp,
    /// Random NCA Down — the paper's proposal, destination-guided (seeded).
    RandomNcaDown,
    /// Pattern-aware baseline (deterministic, sees the pattern).
    Colored,
}

impl AlgorithmSpec {
    /// The name used in reports (matches the paper's legends).
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmSpec::Random => "random",
            AlgorithmSpec::SModK => "s-mod-k",
            AlgorithmSpec::DModK => "d-mod-k",
            AlgorithmSpec::RandomNcaUp => "r-NCA-u",
            AlgorithmSpec::RandomNcaDown => "r-NCA-d",
            AlgorithmSpec::Colored => "colored",
        }
    }

    /// True if the algorithm consumes a seed (and therefore gets a boxplot).
    pub fn is_seeded(&self) -> bool {
        matches!(
            self,
            AlgorithmSpec::Random | AlgorithmSpec::RandomNcaUp | AlgorithmSpec::RandomNcaDown
        )
    }

    /// The full set evaluated by Fig. 2 (classic oblivious schemes).
    pub fn figure2_set() -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::Random,
            AlgorithmSpec::SModK,
            AlgorithmSpec::DModK,
            AlgorithmSpec::Colored,
        ]
    }

    /// The full set evaluated by Fig. 5 (proposals plus references).
    pub fn figure5_set() -> Vec<AlgorithmSpec> {
        vec![
            AlgorithmSpec::SModK,
            AlgorithmSpec::DModK,
            AlgorithmSpec::Colored,
            AlgorithmSpec::RandomNcaUp,
            AlgorithmSpec::RandomNcaDown,
            AlgorithmSpec::Random,
        ]
    }

    /// Instantiate the algorithm for a topology / pattern / seed.
    pub fn instantiate(
        &self,
        xgft: &Xgft,
        pattern: &Pattern,
        seed: u64,
    ) -> Box<dyn RoutingAlgorithm + Send + Sync> {
        match self {
            AlgorithmSpec::Random => Box::new(RandomRouting::new(seed)),
            AlgorithmSpec::SModK => Box::new(SModK::new()),
            AlgorithmSpec::DModK => Box::new(DModK::new()),
            AlgorithmSpec::RandomNcaUp => Box::new(RandomNcaUp::new(xgft, seed)),
            AlgorithmSpec::RandomNcaDown => Box::new(RandomNcaDown::new(xgft, seed)),
            AlgorithmSpec::Colored => Box::new(ColoredRouting::new(xgft, &pattern.combined())),
        }
    }

    /// The closed-form [`CompactScheme`] equivalent of this algorithm, or
    /// `None` for the pattern-aware colored scheme, which has no
    /// label-arithmetic form. For seeded algorithms the same seed yields
    /// paths byte-identical to [`Self::instantiate`]'s.
    pub fn compact_scheme(&self, xgft: &Xgft, seed: u64) -> Option<CompactScheme> {
        Some(match self {
            AlgorithmSpec::Random => CompactScheme::Random { seed },
            AlgorithmSpec::SModK => CompactScheme::SModK,
            AlgorithmSpec::DModK => CompactScheme::DModK,
            AlgorithmSpec::RandomNcaUp => CompactScheme::random_nca_up(xgft, seed),
            AlgorithmSpec::RandomNcaDown => CompactScheme::random_nca_down(xgft, seed),
            AlgorithmSpec::Colored => return None,
        })
    }
}

/// One unit of parallel sweep work: a (topology, algorithm, seed) triple.
/// Deterministic algorithms carry a placeholder seed of 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepShard {
    /// Number of top-level switches of the slimmed topology.
    pub w2: usize,
    /// The algorithm to instantiate.
    pub algorithm: AlgorithmSpec,
    /// Seed for seeded algorithms (0 for deterministic ones).
    pub seed: u64,
}

/// Enumerate the shards of a (w2 × algorithm) grid: seeded algorithms get
/// one shard per seed from `seeds_for_point`, deterministic ones a single
/// placeholder-seeded shard. Shared by [`SweepConfig::shards`] and
/// [`crate::campaign::CampaignConfig::shards`] so the two can never
/// silently diverge in enumeration order.
pub(crate) fn enumerate_shards(
    w2_values: &[usize],
    algorithms: &[AlgorithmSpec],
    seeds_for_point: impl Fn(usize, AlgorithmSpec) -> Vec<u64>,
) -> Vec<SweepShard> {
    let mut shards = Vec::new();
    for &w2 in w2_values {
        for &algo in algorithms {
            if algo.is_seeded() {
                for seed in seeds_for_point(w2, algo) {
                    shards.push(SweepShard {
                        w2,
                        algorithm: algo,
                        seed,
                    });
                }
            } else {
                shards.push(SweepShard {
                    w2,
                    algorithm: algo,
                    seed: 0,
                });
            }
        }
    }
    shards
}

/// Count a completed shard (and emit a trace event when a sink is
/// installed). Rayon shards run on real threads, which is exactly what the
/// registry's atomics are for.
pub(crate) fn record_shard(shard: &SweepShard, crossbar_ps: u64, completion_ps: u64) {
    xgft_obs::global().counter("analysis.shards").incr();
    if xgft_obs::trace_enabled() {
        xgft_obs::trace(
            "shard_completed",
            &[
                ("w2", shard.w2.into()),
                ("algorithm", shard.algorithm.name().into()),
                ("seed", shard.seed.into()),
                (
                    "slowdown",
                    (completion_ps as f64 / crossbar_ps as f64).into(),
                ),
            ],
        );
    }
}

/// Replay one shard through the closed-form [`CompactRoutes`] engine
/// instead of a compiled table. Paths are byte-identical to the compiled
/// form (pinned by the core crate's property tests), so the sample is too.
pub(crate) fn run_shard_compact(
    shard: &SweepShard,
    k: usize,
    network: &NetworkConfig,
    trace: &Trace,
    crossbar_ps: u64,
) -> f64 {
    let spec = XgftSpec::slimmed_two_level(k, shard.w2).expect("valid slimmed spec");
    let xgft = Xgft::new(spec).expect("valid topology");
    let scheme = shard
        .algorithm
        .compact_scheme(&xgft, shard.seed)
        .expect("colored has no compact closed form; rejected upstream");
    let routes = CompactRoutes::for_pairs(&xgft, scheme, trace.communication_pairs());
    let result = run_on_xgft_with_source(trace, &xgft, routes, network)
        .expect("replay cannot deadlock on a valid trace");
    record_shard(shard, crossbar_ps, result.completion_ps);
    result.completion_ps as f64 / crossbar_ps as f64
}

/// Run every shard in parallel (rayon) and return one slowdown sample per
/// shard, in shard order — deterministic for any worker count because the
/// parallel map preserves input order (the flattening below keeps group
/// order, and groups partition the shard list in order).
///
/// Shards are grouped by their `(w2, algorithm)` point — consecutive in the
/// enumeration order of [`enumerate_shards`] — so one rayon work item
/// builds its topology, simulator and replay plan once and recycles them
/// across the point's seeds: the simulator through [`NetworkSim::reset`]
/// (pinned byte-identical to a fresh build) and the replay engine's
/// compiled plan and match-queue arenas through its internal scratch reset
/// (pinned by the tracesim slab suite). Only the route table is rebuilt
/// per seed, because it is the only per-seed state.
pub(crate) fn run_shards(
    shards: &[SweepShard],
    k: usize,
    network: &NetworkConfig,
    pattern: &Pattern,
    trace: &Trace,
    crossbar_ps: u64,
) -> Vec<f64> {
    let mut groups: Vec<&[SweepShard]> = Vec::new();
    let mut rest = shards;
    while let Some(first) = rest.first() {
        let len = rest
            .iter()
            .take_while(|s| s.w2 == first.w2 && s.algorithm == first.algorithm)
            .count();
        let (group, tail) = rest.split_at(len);
        groups.push(group);
        rest = tail;
    }
    let samples: Vec<Vec<f64>> = groups
        .par_iter()
        .map(|group| {
            let spec = XgftSpec::slimmed_two_level(k, group[0].w2).expect("valid slimmed spec");
            let xgft = Xgft::new(spec).expect("valid topology");
            let mut engine = ReplayEngine::new(trace);
            let mut sim = NetworkSim::new(&xgft, network.clone());
            group
                .iter()
                .map(|shard| {
                    let instance = shard.algorithm.instantiate(&xgft, pattern, shard.seed);
                    let table = CompiledRouteTable::compile(
                        &xgft,
                        instance.as_ref(),
                        trace.communication_pairs(),
                    );
                    let result = run_reusing_sim(&mut engine, &mut sim, &table)
                        .expect("replay cannot deadlock on a valid trace");
                    record_shard(shard, crossbar_ps, result.completion_ps);
                    result.completion_ps as f64 / crossbar_ps as f64
                })
                .collect()
        })
        .collect();
    samples.into_iter().flatten().collect()
}

/// Group per-shard samples into [`SweepPoint`]s, one per (w2, algorithm) in
/// the given configuration order.
pub(crate) fn assemble_points(shards: &[SweepShard], samples: &[f64]) -> Vec<SweepPoint> {
    let mut order: Vec<(usize, AlgorithmSpec)> = Vec::new();
    for shard in shards {
        if !order.contains(&(shard.w2, shard.algorithm)) {
            order.push((shard.w2, shard.algorithm));
        }
    }
    order
        .into_iter()
        .map(|(w2, algo)| {
            let values: Vec<f64> = shards
                .iter()
                .zip(samples)
                .filter(|(s, _)| s.w2 == w2 && s.algorithm == algo)
                .map(|(_, &v)| v)
                .collect();
            SweepPoint {
                w2,
                algorithm: algo.name().to_string(),
                stats: BoxplotStats::from_samples(&values),
                samples: values,
            }
        })
        .collect()
}

/// One point of a sweep: a (w2, algorithm) pair with its slowdown samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Number of top-level switches of the slimmed topology.
    pub w2: usize,
    /// Algorithm name.
    pub algorithm: String,
    /// Slowdown sample per seed (a single entry for deterministic schemes).
    pub samples: Vec<f64>,
    /// Boxplot summary of the samples.
    pub stats: BoxplotStats,
}

/// The full result of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Name of the workload.
    pub trace: String,
    /// Switch radix parameter `k` of the swept family.
    pub k: usize,
    /// The crossbar reference completion time (ps).
    pub crossbar_ps: u64,
    /// All sweep points, ordered by descending w2 then algorithm.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Find a point by (w2, algorithm name).
    pub fn point(&self, w2: usize, algorithm: &str) -> Option<&SweepPoint> {
        self.points
            .iter()
            .find(|p| p.w2 == w2 && p.algorithm == algorithm)
    }

    /// Render the sweep as the text table the experiment binaries print:
    /// one row per w2, one column per algorithm (median slowdown).
    pub fn render_table(&self) -> String {
        let algorithms =
            crate::stats::unique_sorted(self.points.iter().map(|p| p.algorithm.as_str()));
        let mut w2s: Vec<usize> = self.points.iter().map(|p| p.w2).collect();
        w2s.sort_unstable_by(|a, b| b.cmp(a));
        w2s.dedup();
        let mut out = String::new();
        out.push_str(&format!(
            "# {} on XGFT(2;{k},{k};1,w2) — slowdown vs Full-Crossbar (median)\n",
            self.trace,
            k = self.k
        ));
        out.push_str(&format!("{:>4}", "w2"));
        for a in &algorithms {
            out.push_str(&format!(" {a:>10}"));
        }
        out.push('\n');
        for &w2 in &w2s {
            out.push_str(&format!("{w2:>4}"));
            for a in &algorithms {
                match self.point(w2, a) {
                    Some(p) => out.push_str(&format!(" {:>10.3}", p.stats.median)),
                    None => out.push_str(&format!(" {:>10}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Configuration of a progressive-slimming sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Switch radix `k` (16 in the paper).
    pub k: usize,
    /// The `w2` values to sweep (the paper uses 16 down to 1).
    pub w2_values: Vec<usize>,
    /// Algorithms to evaluate.
    pub algorithms: Vec<AlgorithmSpec>,
    /// Seeds for the randomised algorithms (the paper uses 40–60).
    pub seeds: Vec<u64>,
    /// Network parameters.
    pub network: NetworkConfig,
}

impl SweepConfig {
    /// The paper's Fig. 2 configuration scaled by a per-message byte count
    /// (use the generators' constants for the full-size runs).
    pub fn paper_family(algorithms: Vec<AlgorithmSpec>, seeds: Vec<u64>) -> Self {
        SweepConfig {
            k: 16,
            w2_values: (1..=16).rev().collect(),
            algorithms,
            seeds,
            network: NetworkConfig::default(),
        }
    }

    /// Decompose the sweep into its (topology, algorithm, seed) shards:
    /// seeded algorithms get one shard per configured seed (the same list
    /// at every point), deterministic ones a single shard. Pure function of
    /// the configuration.
    pub fn shards(&self) -> Vec<SweepShard> {
        enumerate_shards(&self.w2_values, &self.algorithms, |_, _| self.seeds.clone())
    }

    /// Run the sweep for a workload pattern (the trace is derived from it).
    pub fn run(&self, pattern: &Pattern) -> SweepResult {
        let trace = workloads::trace_from_pattern(pattern, 0);
        self.run_trace(pattern, &trace)
    }

    /// [`Self::run`] through the closed-form [`CompactRoutes`] engine:
    /// identical shards, identical samples (compact paths are byte-equal to
    /// compiled ones), near-zero route state per shard. Panics if the
    /// configuration lists the colored scheme, which has no closed form.
    pub fn run_compact(&self, pattern: &Pattern) -> SweepResult {
        xgft_obs::span!("analysis.sweep");
        let trace = workloads::trace_from_pattern(pattern, 0);
        let crossbar_ps = run_on_crossbar(&trace, &self.network)
            .expect("crossbar replay cannot deadlock")
            .completion_ps;
        let shards = self.shards();
        let samples: Vec<f64> = shards
            .par_iter()
            .map(|shard| run_shard_compact(shard, self.k, &self.network, &trace, crossbar_ps))
            .collect();
        SweepResult {
            trace: trace.name().to_string(),
            k: self.k,
            crossbar_ps,
            points: assemble_points(&shards, &samples),
        }
    }

    /// Run the sweep for an explicit trace (must communicate over the
    /// pattern's pairs; the pattern is still needed by pattern-aware
    /// schemes): one parallel replay per shard, aggregated into per-point
    /// boxplots.
    pub fn run_trace(&self, pattern: &Pattern, trace: &Trace) -> SweepResult {
        xgft_obs::span!("analysis.sweep");
        let crossbar_ps = run_on_crossbar(trace, &self.network)
            .expect("crossbar replay cannot deadlock")
            .completion_ps;
        let shards = self.shards();
        let samples = run_shards(&shards, self.k, &self.network, pattern, trace, crossbar_ps);
        SweepResult {
            trace: trace.name().to_string(),
            k: self.k,
            crossbar_ps,
            points: assemble_points(&shards, &samples),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft_patterns::generators;

    /// A scaled-down progressive-slimming sweep (k = 4, small messages): the
    /// qualitative shape of Fig. 2 must hold — slowdown grows as the tree is
    /// slimmed, and D-mod-k matches the crossbar on the full tree for the
    /// WRF-like exchange.
    #[test]
    fn small_wrf_sweep_has_figure2_shape() {
        let pattern = generators::wrf_mesh_exchange(4, 4, 32 * 1024);
        let config = SweepConfig {
            k: 4,
            w2_values: vec![4, 2, 1],
            algorithms: vec![AlgorithmSpec::DModK, AlgorithmSpec::Random],
            seeds: vec![1, 2, 3],
            network: NetworkConfig::default(),
        };
        let result = config.run(&pattern);
        assert_eq!(result.k, 4);
        assert!(result.crossbar_ps > 0);

        let full = result.point(4, "d-mod-k").unwrap();
        assert!(
            full.stats.median < 1.1,
            "full tree d-mod-k {:?}",
            full.stats
        );
        let slim = result.point(1, "d-mod-k").unwrap();
        assert!(
            slim.stats.median > 2.0,
            "w2=1 should be much slower, got {:?}",
            slim.stats
        );
        // Slimming never speeds things up.
        assert!(slim.stats.median >= full.stats.median);

        // Random gets three samples, deterministic algorithms one.
        assert_eq!(result.point(2, "random").unwrap().samples.len(), 3);
        assert_eq!(result.point(2, "d-mod-k").unwrap().samples.len(), 1);

        let table = result.render_table();
        assert!(table.contains("d-mod-k"));
        assert!(table.contains("w2"));
    }

    /// The compact-representation sweep must reproduce the compiled sweep
    /// exactly: same shards, same crossbar reference, bitwise-equal
    /// slowdown samples for every (w2, algorithm, seed) point.
    #[test]
    fn compact_sweep_is_byte_identical_to_compiled() {
        let pattern = generators::shift(16, 4, 16 * 1024);
        let config = SweepConfig {
            k: 4,
            w2_values: vec![4, 2],
            algorithms: vec![
                AlgorithmSpec::DModK,
                AlgorithmSpec::Random,
                AlgorithmSpec::RandomNcaUp,
            ],
            seeds: vec![1, 2],
            network: NetworkConfig::default(),
        };
        let compiled = config.run(&pattern);
        let compact = config.run_compact(&pattern);
        assert_eq!(compiled.crossbar_ps, compact.crossbar_ps);
        assert_eq!(compiled.points.len(), compact.points.len());
        for (a, b) in compiled.points.iter().zip(&compact.points) {
            assert_eq!((a.w2, &a.algorithm), (b.w2, &b.algorithm));
            assert_eq!(a.samples, b.samples, "{}@w2={}", a.algorithm, a.w2);
        }
    }

    #[test]
    fn algorithm_spec_metadata() {
        assert!(AlgorithmSpec::Random.is_seeded());
        assert!(AlgorithmSpec::RandomNcaUp.is_seeded());
        assert!(!AlgorithmSpec::DModK.is_seeded());
        assert!(!AlgorithmSpec::Colored.is_seeded());
        assert_eq!(AlgorithmSpec::figure2_set().len(), 4);
        assert_eq!(AlgorithmSpec::figure5_set().len(), 6);
        assert_eq!(AlgorithmSpec::RandomNcaDown.name(), "r-NCA-d");
    }

    #[test]
    fn paper_family_covers_w2_16_down_to_1() {
        let cfg = SweepConfig::paper_family(AlgorithmSpec::figure2_set(), vec![1]);
        assert_eq!(cfg.k, 16);
        assert_eq!(cfg.w2_values.len(), 16);
        assert_eq!(cfg.w2_values[0], 16);
        assert_eq!(*cfg.w2_values.last().unwrap(), 1);
    }
}
