//! Relabeling ablation study.
//!
//! Legacy shim: forwards argv to the `ablation` entry of the scenario
//! registry. The canonical invocation is `xgft ablation [flags]`; all
//! experiment logic lives in `xgft-scenario` (see `xgft list`).

fn main() {
    std::process::exit(xgft_scenario::cli::run_named(
        "ablation",
        std::env::args().skip(1),
    ));
}
