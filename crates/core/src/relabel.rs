//! The balanced random relabeling at the heart of the proposed r-NCA family
//! (Sec. VIII of the paper).
//!
//! The paper describes the proposal as a *relabeling* of the nodes followed
//! by the usual mod-style self-routing on the new labels: a recursive
//! scramble of the uppermost subtrees, then independent scrambles of each
//! lower subtree, preserving topological neighbourhoods. For general XGFTs
//! the labels must map the `m_i` child digits onto the `w_{i+1}` parent
//! ports ("map the m's to w's"), otherwise the modulo wrap re-creates the
//! imbalance of Fig. 4(b). The resulting functions
//! `W_i(M_h, …, M_{i+1})(M_i) : [0, m_i) → [0, w_{i+1})` are *balanced*
//! random maps: every port value receives either `⌊m_i/w_{i+1}⌋` or
//! `⌈m_i/w_{i+1}⌉` child values.
//!
//! [`RelabelMaps`] stores one such map per (digit position, subtree context)
//! and is shared by [`crate::RandomNcaUp`] and [`crate::RandomNcaDown`].
//! With the maps fixed to `c ↦ c mod w_{i+1}` the machinery reproduces
//! S-mod-k / D-mod-k exactly, which is used as a cross-check in the tests.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use xgft_topo::{Xgft, XgftSpec};

/// How the child-digit → parent-port maps are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MapStyle {
    /// The paper's proposal: balanced random maps.
    BalancedRandom,
    /// Ablation: unconstrained uniform random maps.
    UnbalancedRandom,
    /// Degenerate `c mod w` maps (S-mod-k / D-mod-k).
    Modulo,
}

/// The per-level, per-subtree balanced maps from child digit values to
/// parent ports.
#[derive(Debug, Clone)]
pub struct RelabelMaps {
    spec: XgftSpec,
    /// `maps[l - 1]` (for digit position `l`, `1 ≤ l < h`): one map per
    /// subtree context; each map has `m_l` entries with values in
    /// `[0, w_{l+1})`. Contexts are indexed by the mixed-radix number formed
    /// by the guiding label's digits above position `l` (position `l+1`
    /// least significant).
    maps: Vec<Vec<Vec<usize>>>,
    seed: u64,
}

impl RelabelMaps {
    /// Draw a fresh set of balanced random maps for `xgft`, reproducible
    /// from `seed`.
    pub fn random(xgft: &Xgft, seed: u64) -> Self {
        Self::build(xgft.spec().clone(), seed, MapStyle::BalancedRandom)
    }

    /// The degenerate maps `c ↦ c mod w_{l+1}` that reproduce the classic
    /// mod-k schemes (used for testing and for ablation benchmarks).
    pub fn modulo(xgft: &Xgft) -> Self {
        Self::build(xgft.spec().clone(), 0, MapStyle::Modulo)
    }

    /// Ablation variant: each child digit is mapped to a uniformly random
    /// port **without** the balancing constraint. On slimmed trees some
    /// ports end up serving more children than others, re-creating part of
    /// the Fig. 4(b) imbalance the balanced maps were designed to avoid.
    /// Kept for the ablation experiment and benchmarks.
    pub fn unbalanced_random(xgft: &Xgft, seed: u64) -> Self {
        Self::build(xgft.spec().clone(), seed, MapStyle::UnbalancedRandom)
    }

    fn build(spec: XgftSpec, seed: u64, style: MapStyle) -> Self {
        let h = spec.height();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut maps = Vec::with_capacity(h.saturating_sub(1));
        for l in 1..h {
            let m_l = spec.m(l);
            let w_next = spec.w(l + 1);
            let num_contexts: usize = ((l + 1)..=h).map(|j| spec.m(j)).product();
            let mut per_context = Vec::with_capacity(num_contexts);
            for _ in 0..num_contexts {
                let targets = match style {
                    MapStyle::BalancedRandom => {
                        // Balanced random map: every port receives
                        // floor(m_l / w_next) children, a random subset of
                        // (m_l mod w_next) ports receives one extra, and the
                        // association child -> port is itself shuffled.
                        let base = m_l / w_next;
                        let extra = m_l % w_next;
                        let mut port_order: Vec<usize> = (0..w_next).collect();
                        port_order.shuffle(&mut rng);
                        let mut targets = Vec::with_capacity(m_l);
                        for (rank, &port) in port_order.iter().enumerate() {
                            let count = base + usize::from(rank < extra);
                            targets.extend(std::iter::repeat_n(port, count));
                        }
                        targets.shuffle(&mut rng);
                        targets
                    }
                    MapStyle::UnbalancedRandom => (0..m_l)
                        .map(|_| rand::Rng::gen_range(&mut rng, 0..w_next))
                        .collect(),
                    // Degenerate modulo map: child c goes to port c mod w.
                    MapStyle::Modulo => (0..m_l).map(|c| c % w_next).collect(),
                };
                per_context.push(targets);
            }
            maps.push(per_context);
        }
        RelabelMaps { spec, maps, seed }
    }

    /// The seed the maps were drawn from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The spec the maps were built for.
    pub fn spec(&self) -> &XgftSpec {
        &self.spec
    }

    /// The context index of a guiding leaf at digit position `l`: the
    /// mixed-radix number formed by its digits above `l`.
    fn context_index(&self, digits: &[usize], l: usize) -> usize {
        let h = self.spec.height();
        let mut idx = 0usize;
        for pos in ((l + 1)..=h).rev() {
            idx = idx * self.spec.m(pos) + digits[pos - 1];
        }
        idx
    }

    /// The up-port chosen at a level-`l` switch (hop into level `l+1`,
    /// `1 ≤ l < h`) when guided by a leaf with the given label digits
    /// (least-significant first). This is the label-arithmetic entry point
    /// the closed-form [`crate::CompactRoutes`] engine uses: no topology
    /// object needed, just the digits.
    pub fn port_for_digits(&self, digits: &[usize], l: usize) -> usize {
        let ctx = self.context_index(digits, l);
        self.maps[l - 1][ctx][digits[l - 1]]
    }

    /// The up-port chosen at a level-`l` switch (hop into level `l+1`,
    /// `1 ≤ l < h`) when guided by `leaf`.
    pub fn port_at(&self, xgft: &Xgft, leaf: usize, l: usize) -> usize {
        self.port_for_digits(xgft.leaf_digits(leaf), l)
    }

    /// Bytes of map payload held by the relabeling (the per-context target
    /// vectors plus their spines) — the scheme-state term of
    /// [`crate::CompactRoutes::storage_bytes`].
    pub fn storage_bytes(&self) -> usize {
        self.maps
            .iter()
            .map(|per_context| {
                std::mem::size_of_val(&per_context[..])
                    + per_context
                        .iter()
                        .map(|targets| std::mem::size_of_val(&targets[..]))
                        .sum::<usize>()
            })
            .sum()
    }

    /// The full up-port sequence guided by `leaf`, climbing to `level`.
    pub fn ports_to_level(&self, xgft: &Xgft, leaf: usize, level: usize) -> Vec<usize> {
        (0..level)
            .map(|l| {
                if l == 0 {
                    if self.spec.w(1) == 1 {
                        0
                    } else {
                        xgft.leaf_digit(leaf, 1) % self.spec.w(1)
                    }
                } else {
                    self.port_at(xgft, leaf, l)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modk::mod_route;
    use std::collections::HashMap;
    use xgft_topo::XgftSpec;

    #[test]
    fn maps_are_balanced() {
        let xgft = Xgft::new(XgftSpec::slimmed_two_level(16, 10).unwrap()).unwrap();
        let maps = RelabelMaps::random(&xgft, 7);
        // Digit position 1: every context's map sends 16 children onto 10
        // ports, each port receiving 1 or 2 children.
        for ctx_map in &maps.maps[0] {
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for &v in ctx_map {
                assert!(v < 10);
                *counts.entry(v).or_default() += 1;
            }
            assert_eq!(counts.len(), 10);
            assert!(counts.values().all(|&c| c == 1 || c == 2));
        }
    }

    #[test]
    fn modulo_maps_reproduce_mod_k_routes() {
        let xgft = Xgft::new(XgftSpec::new(vec![4, 4, 4], vec![1, 3, 2]).unwrap()).unwrap();
        let maps = RelabelMaps::modulo(&xgft);
        for leaf in 0..xgft.num_leaves() {
            for level in 0..=xgft.height() {
                let via_maps = maps.ports_to_level(&xgft, leaf, level);
                let via_mod = mod_route(&xgft, leaf, level);
                assert_eq!(via_maps, via_mod.up_ports(), "leaf {leaf} level {level}");
            }
        }
    }

    #[test]
    fn same_seed_same_maps_different_seed_differs() {
        let xgft = Xgft::new(XgftSpec::slimmed_two_level(16, 16).unwrap()).unwrap();
        let a = RelabelMaps::random(&xgft, 5);
        let b = RelabelMaps::random(&xgft, 5);
        let c = RelabelMaps::random(&xgft, 6);
        let ports_a: Vec<usize> = (0..256).map(|leaf| a.port_at(&xgft, leaf, 1)).collect();
        let ports_b: Vec<usize> = (0..256).map(|leaf| b.port_at(&xgft, leaf, 1)).collect();
        let ports_c: Vec<usize> = (0..256).map(|leaf| c.port_at(&xgft, leaf, 1)).collect();
        assert_eq!(ports_a, ports_b);
        assert_ne!(ports_a, ports_c);
        assert_eq!(a.seed(), 5);
    }

    #[test]
    fn contexts_are_independent_per_subtree() {
        // Leaves with the same low digit but different upper digits may be
        // mapped to different ports (the scramble is per subtree).
        let xgft = Xgft::new(XgftSpec::slimmed_two_level(16, 16).unwrap()).unwrap();
        let maps = RelabelMaps::random(&xgft, 11);
        let mut distinct = std::collections::HashSet::new();
        for upper in 0..16 {
            let leaf = upper * 16 + 3; // digit1 = 3, digit2 = upper
            distinct.insert(maps.port_at(&xgft, leaf, 1));
        }
        assert!(
            distinct.len() > 1,
            "per-subtree scrambles should not all agree"
        );
    }

    #[test]
    fn ports_respect_slimmed_width() {
        let xgft = Xgft::new(XgftSpec::new(vec![4, 4, 4], vec![1, 2, 3]).unwrap()).unwrap();
        let maps = RelabelMaps::random(&xgft, 3);
        for leaf in 0..xgft.num_leaves() {
            let ports = maps.ports_to_level(&xgft, leaf, 3);
            assert_eq!(ports[0], 0);
            assert!(ports[1] < 2);
            assert!(ports[2] < 3);
        }
    }

    #[test]
    fn balanced_even_when_wider_than_children() {
        // w_{l+1} > m_l: every port used at most once.
        let xgft = Xgft::new(XgftSpec::new(vec![3, 3], vec![1, 5]).unwrap()).unwrap();
        let maps = RelabelMaps::random(&xgft, 1);
        for ctx_map in &maps.maps[0] {
            let mut seen = std::collections::HashSet::new();
            for &v in ctx_map {
                assert!(v < 5);
                assert!(seen.insert(v), "port reused although w > m");
            }
        }
    }
}
