//! Cross-crate integration tests: topology → patterns → routing → simulation
//! → analysis, exercised through the umbrella crate's public API exactly as
//! a downstream user would.

use xgft::analysis::slowdown::{run_on_crossbar, slowdown_of};
use xgft::patterns::generators;
use xgft::prelude::*;
use xgft::routing::{ContentionReport, RandomNcaDown, RandomNcaUp};
use xgft::tracesim::workloads;

/// End-to-end: the WRF-like exchange on a slimmed tree, every algorithm, all
/// slowdowns finite and ordered sensibly.
#[test]
fn end_to_end_wrf_on_slimmed_tree() {
    let xgft = Xgft::new(XgftSpec::slimmed_two_level(16, 8).unwrap()).unwrap();
    let trace = workloads::wrf_256_trace(16 * 1024);
    let config = NetworkConfig::default();
    let crossbar = run_on_crossbar(&trace, &config).unwrap().completion_ps;
    assert!(crossbar > 0);

    let pattern = generators::wrf_256(16 * 1024).combined();
    let algorithms: Vec<Box<dyn RoutingAlgorithm>> = vec![
        Box::new(RandomRouting::new(1)),
        Box::new(SModK::new()),
        Box::new(DModK::new()),
        Box::new(RandomNcaUp::new(&xgft, 1)),
        Box::new(RandomNcaDown::new(&xgft, 1)),
        Box::new(ColoredRouting::new(&xgft, &pattern)),
    ];
    let mut slowdowns = std::collections::HashMap::new();
    for algo in &algorithms {
        let report = slowdown_of(&trace, &xgft, algo.as_ref(), &config, Some(crossbar)).unwrap();
        assert!(report.slowdown.is_finite());
        assert!(
            report.slowdown >= 0.99,
            "{}: {}",
            report.algorithm,
            report.slowdown
        );
        slowdowns.insert(report.algorithm.clone(), report.slowdown);
    }
    // The paper's WRF observation: the mod-k schemes track the pattern-aware
    // bound and beat Random.
    assert!(slowdowns["d-mod-k"] <= 1.2 * slowdowns["colored"]);
    assert!(slowdowns["s-mod-k"] <= 1.2 * slowdowns["colored"]);
    assert!(slowdowns["random"] >= slowdowns["d-mod-k"]);
}

/// The CG pathology end to end: D-mod-k much slower than Colored on the full
/// tree, r-NCA-d recovers most of the gap.
#[test]
fn end_to_end_cg_pathology_and_recovery() {
    let xgft = Xgft::new(XgftSpec::slimmed_two_level(16, 16).unwrap()).unwrap();
    let cg = generators::cg_d(128, 32 * 1024);
    let fifth = xgft::patterns::Pattern::single_phase("cg-fifth", cg.phases()[4].clone());
    let trace = workloads::trace_from_pattern(&fifth, 0);
    let config = NetworkConfig::default();
    let crossbar = run_on_crossbar(&trace, &config).unwrap().completion_ps;

    let dmodk = slowdown_of(&trace, &xgft, &DModK::new(), &config, Some(crossbar)).unwrap();
    let colored_algo = ColoredRouting::new(&xgft, &fifth.combined());
    let colored = slowdown_of(&trace, &xgft, &colored_algo, &config, Some(crossbar)).unwrap();
    let rnca = RandomNcaDown::new(&xgft, 5);
    let rnca_d = slowdown_of(&trace, &xgft, &rnca, &config, Some(crossbar)).unwrap();

    assert!(
        dmodk.slowdown > 3.0 * colored.slowdown,
        "pathology missing: d-mod-k {:.2} vs colored {:.2}",
        dmodk.slowdown,
        colored.slowdown
    );
    assert!(
        rnca_d.slowdown < 0.7 * dmodk.slowdown,
        "r-NCA-d should break the congruence: {:.2} vs {:.2}",
        rnca_d.slowdown,
        dmodk.slowdown
    );
}

/// Route tables produced by every scheme are valid on every topology of the
/// paper's sweep family.
#[test]
fn all_schemes_produce_valid_tables_across_the_family() {
    for w2 in [16usize, 10, 5, 1] {
        let xgft = Xgft::new(XgftSpec::slimmed_two_level(16, w2).unwrap()).unwrap();
        let pattern = generators::cg_d(128, 1024).combined();
        let flows: Vec<(usize, usize)> = pattern.network_flows().map(|f| (f.src, f.dst)).collect();
        let algorithms: Vec<Box<dyn RoutingAlgorithm>> = vec![
            Box::new(RandomRouting::new(w2 as u64)),
            Box::new(SModK::new()),
            Box::new(DModK::new()),
            Box::new(RandomNcaUp::new(&xgft, 9)),
            Box::new(RandomNcaDown::new(&xgft, 9)),
            Box::new(ColoredRouting::new(&xgft, &pattern)),
        ];
        for algo in &algorithms {
            let table = RouteTable::build(&xgft, algo.as_ref(), flows.iter().copied());
            table
                .validate(&xgft)
                .unwrap_or_else(|e| panic!("{} invalid on w2={w2}: {e}", algo.name()));
            let report = ContentionReport::compute(&xgft, &table, flows.iter().copied());
            assert!(report.network_contention >= 1);
        }
    }
}

/// The simulator respects conservation: every byte injected is delivered,
/// regardless of routing scheme or slimming.
#[test]
fn byte_conservation_through_the_full_stack() {
    let xgft = Xgft::new(XgftSpec::slimmed_two_level(8, 3).unwrap()).unwrap();
    let trace = workloads::cg_d_trace(64, 8 * 1024);
    let config = NetworkConfig::default();
    let result =
        xgft::analysis::slowdown::run_on_xgft(&trace, &xgft, &DModK::new(), &config).unwrap();
    assert_eq!(result.network_report.total_bytes, trace.total_bytes());
    assert_eq!(result.network_report.completed_messages, trace.num_sends());
    assert_eq!(result.rank_finish_ps.len(), 64);
    assert!(result.completion_ps >= result.network_report.makespan_ps);
}

/// Replaying the same trace with the same seed twice gives bit-identical
/// results (full-stack determinism).
#[test]
fn full_stack_determinism() {
    let xgft = Xgft::new(XgftSpec::slimmed_two_level(8, 4).unwrap()).unwrap();
    let trace = workloads::wrf_trace(8, 8, 8 * 1024);
    let config = NetworkConfig::default();
    let run = |seed| {
        let algo = RandomNcaUp::new(&xgft, seed);
        let result = xgft::analysis::slowdown::run_on_xgft(&trace, &xgft, &algo, &config).unwrap();
        (result.completion_ps, result.network_report.messages)
    };
    // Same seed: bit-identical timing, down to every per-message record.
    assert_eq!(run(3), run(3));
    // Different seeds draw different relabelings (routes differ even if the
    // aggregate completion time happens to coincide).
    let a = RouteTable::build(
        &xgft,
        &RandomNcaUp::new(&xgft, 3),
        trace.communication_pairs(),
    );
    let b = RouteTable::build(
        &xgft,
        &RandomNcaUp::new(&xgft, 4),
        trace.communication_pairs(),
    );
    assert!(trace
        .communication_pairs()
        .iter()
        .any(|&(s, d)| a.route(s, d) != b.route(s, d)));
}

/// The prelude re-exports everything a typical user touches.
#[test]
fn prelude_covers_the_common_api() {
    let _spec: XgftSpec = XgftSpec::k_ary_n_tree(2, 2);
    let _tree = KAryNTree::new(2, 2);
    let _cfg = NetworkConfig::default();
    let _mode = SwitchingMode::StoreAndForward;
    let _pattern: Pattern = generators::shift(4, 1, 64);
    let _matrix = ConnectivityMatrix::new(4);
    let _label: Option<NodeLabel> = None;
    let _trace: Trace = wrf_trace(2, 2, 1024);
    let trace = cg_d_trace(32, 1024);
    let _engine = ReplayEngine::new(&trace);
    let _report: Option<SlowdownReport> = None;
    let _route = Route::empty();
}
