//! Criterion benches of route-table representations: the flat
//! [`CompiledRouteTable`] against the HashMap [`RouteTable`] on a
//! 1024-leaf machine (`XGFT(2;32,32;1,24)`).
//!
//! `lookup_replay` measures what the simulator pays per message — fetch the
//! pair's route and obtain its dense channel path. The hash form pays a
//! hash lookup plus label-arithmetic expansion; the compiled form is two
//! array reads returning a borrowed slice. The acceptance bar for this PR
//! is a ≥5x advantage for the compiled form on the all-pairs sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xgft_core::{CompiledRouteTable, DModK, RandomRouting, RouteTable};
use xgft_topo::{Xgft, XgftSpec};

fn machine() -> Xgft {
    // 1024 leaves, slimmed top level.
    Xgft::new(XgftSpec::slimmed_two_level(32, 24).unwrap()).unwrap()
}

fn lookup_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_lookup_replay_1024");
    group.sample_size(10);
    let xgft = machine();
    let n = xgft.num_leaves();
    let hash = RouteTable::build_all_pairs(&xgft, &DModK::new());
    let compiled = CompiledRouteTable::from_table(&xgft, &hash);

    group.bench_function("hashmap_expand", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let route = hash.route(s, d).expect("all pairs present");
                    let path = xgft.route_channels(s, d, route).expect("valid");
                    acc += path.len() + path[0];
                }
            }
            black_box(acc)
        })
    });

    group.bench_function("compiled_flat", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let path = compiled.path(s, d).expect("all pairs present");
                    acc += path.len() + path[0] as usize;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn compile_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_compile_1024");
    group.sample_size(10);
    let xgft = machine();
    let hash = RouteTable::build_all_pairs(&xgft, &RandomRouting::new(1));
    group.bench_function("from_hash_table", |b| {
        b.iter(|| black_box(CompiledRouteTable::from_table(&xgft, black_box(&hash))).len())
    });
    group.bench_function("direct_all_pairs", |b| {
        b.iter(|| black_box(CompiledRouteTable::compile_all_pairs(&xgft, &DModK::new())).len())
    });
    group.finish();
}

criterion_group!(benches, lookup_replay, compile_cost);
criterion_main!(benches);
