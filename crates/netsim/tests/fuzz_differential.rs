//! Deterministic-RNG fuzz differential: the event-core's safety net.
//!
//! Every iteration draws a random small XGFT, a random routing scheme, a
//! random workload (pattern-generator or raw random flow set, random
//! message size — deliberately including non-segment-multiple sizes) and
//! optionally a random fault set (uniform links, a switch kill or a
//! correlated cable cut), then prices the routed traffic through three
//! independent engines and two injection paths:
//!
//! 1. **netsim, per-message** — `schedule_message_on_path` flow by flow;
//! 2. **netsim, batched** — the same matrix through one
//!    [`InjectionBatch`]/`schedule_batch` call, asserted *bit-identical*
//!    to (1): same report, same ids, same per-channel busy times;
//! 3. **tracesim** — the same flows replayed as a Send/Recv trace over the
//!    same compiled table, asserted byte-equal to netsim channel by
//!    channel;
//! 4. **xgft-flow** — exact per-channel loads with per-flow demands in
//!    channel-occupancy picoseconds (`ideal_transfer_ps`), so the
//!    analytical loads must equal the simulated busy times to float
//!    round-off (1e-9 relative), channel by channel.
//!
//! Degraded iterations additionally fire the drawn fault set's channels
//! as **mid-run `fail_channel` events**: the patched routes avoid those
//! channels, so the failures must interleave with traffic in the event
//! core without perturbing any engine's outcome. A further drop/repair
//! sub-case fails a channel the traffic *does* cross (`Drop` policy),
//! repairs it mid-run and injects follow-up messages over the healed
//! path — tracesim and the flow model cannot price in-flight drops, so
//! that case pins the narrower per-message ≡ batched invariant plus
//! delivered/dropped conservation.
//!
//! The loop is seeded from a fixed constant through the workspace's
//! canonical SplitMix64, so every run (and every CI run) replays the same
//! instance stream; a failure message names the iteration seed, which is
//! enough to reproduce it under a debugger. `XGFT_FUZZ_ITERS` raises the
//! budget (the CI step pins it explicitly); the in-tree default keeps the
//! suite fast.

use xgft_core::{
    CompiledRouteTable, DModK, RandomNcaDown, RandomNcaUp, RandomRouting, RoutingAlgorithm, SModK,
};
use xgft_flow::{DegradedLoads, TrafficMatrix};
use xgft_netsim::{FailurePolicy, InjectionBatch, NetworkConfig, NetworkSim, SimReport};
use xgft_patterns::generators;
use xgft_topo::fault::splitmix64;
use xgft_topo::{FaultSet, Xgft, XgftSpec};
use xgft_tracesim::{RankEvent, ReplayEngine, RoutedNetwork, Trace};

/// Iterations when `XGFT_FUZZ_ITERS` is unset: enough to cover every
/// scheme × workload family combination at least once, small enough for
/// the default test run.
const DEFAULT_ITERS: u64 = 24;

/// Fixed stream seed — the whole fuzz run is a pure function of this.
const STREAM_SEED: u64 = 0x5EED_D1FF_E7E5_71A1;

/// Minimal deterministic RNG over the workspace's canonical SplitMix64.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(1);
        splitmix64(self.0)
    }

    /// Uniform draw in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

fn cfg() -> NetworkConfig {
    NetworkConfig::default()
}

/// A random small machine: slimmed two-level or an irregular 2–3-level
/// spec, capped at 64 leaves so a fuzz iteration stays in the millisecond
/// range.
fn random_topology(rng: &mut Rng) -> Xgft {
    let spec = match rng.below(3) {
        0 => {
            let k = 2 + rng.below(3) as usize; // 2..=4 -> 4..16 leaves
            let w2 = 1 + rng.below(k as u64) as usize;
            XgftSpec::slimmed_two_level(k, w2).unwrap()
        }
        1 => {
            let k = 2 + rng.below(2) as usize;
            XgftSpec::k_ary_n_tree(k, 3) // k^3 = 8 or 27 leaves
        }
        _ => {
            let m1 = 2 + rng.below(2) as usize;
            let m2 = 2 + rng.below(2) as usize;
            let w2 = 1 + rng.below(2) as usize;
            let w3 = 1 + rng.below(2) as usize;
            XgftSpec::new(vec![m1, m2, 2], vec![1, w2, w3]).unwrap()
        }
    };
    Xgft::new(spec).unwrap()
}

/// A random routing scheme over the machine.
fn random_scheme(rng: &mut Rng, xgft: &Xgft) -> (String, Box<dyn RoutingAlgorithm>) {
    match rng.below(5) {
        0 => ("d-mod-k".into(), Box::new(DModK::new())),
        1 => ("s-mod-k".into(), Box::new(SModK::new())),
        2 => {
            let seed = rng.next();
            (
                format!("random/{seed:#x}"),
                Box::new(RandomRouting::new(seed)),
            )
        }
        3 => {
            let seed = rng.next();
            (
                format!("r-nca-d/{seed:#x}"),
                Box::new(RandomNcaDown::new(xgft, seed)),
            )
        }
        _ => {
            let seed = rng.next();
            (
                format!("r-nca-u/{seed:#x}"),
                Box::new(RandomNcaUp::new(xgft, seed)),
            )
        }
    }
}

/// A random workload over `n` leaves: a named pattern-generator family or
/// a raw random flow set; message sizes include a non-segment-multiple.
fn random_flows(rng: &mut Rng, n: usize) -> (String, Vec<(usize, usize, u64)>) {
    let bytes = [1024u64, 4096, 5000, 16 * 1024][rng.below(4) as usize];
    let (name, pattern) = match rng.below(4) {
        0 => {
            let offset = 1 + rng.below(n as u64 - 1) as usize;
            (
                format!("shift+{offset}"),
                generators::shift(n, offset, bytes),
            )
        }
        1 => ("tornado".into(), generators::tornado(n, bytes)),
        2 if n.is_power_of_two() => (
            "bit_complement".into(),
            generators::bit_complement(n, bytes),
        ),
        2 => ("ring_exchange".into(), generators::ring_exchange(n, bytes)),
        _ => {
            // Raw random flow set: up to 2n directed pairs, duplicates
            // dropped, self-pairs skipped.
            let mut flows: Vec<(usize, usize)> = (0..2 * n)
                .map(|_| (rng.below(n as u64) as usize, rng.below(n as u64) as usize))
                .filter(|&(s, d)| s != d)
                .collect();
            flows.sort_unstable();
            flows.dedup();
            let flows = flows.into_iter().map(|(s, d)| (s, d, bytes)).collect();
            return (format!("random-pairs/{bytes}B"), flows);
        }
    };
    let flows = pattern
        .combined()
        .network_flows()
        .map(|f| (f.src, f.dst, f.bytes))
        .collect();
    (format!("{name}/{bytes}B"), flows)
}

/// Netsim per-message injection: the historical reference path. The
/// `schedule` is a list of mid-run `fail_channel` events (time, channel)
/// applied with `CompleteInFlight` before traffic is injected.
fn run_per_message(
    xgft: &Xgft,
    table: &CompiledRouteTable,
    flows: &[(usize, usize, u64)],
    schedule: &[(u64, usize)],
) -> (SimReport, Vec<u64>) {
    let mut sim = NetworkSim::new(xgft, cfg());
    for &(at_ps, ch) in schedule {
        sim.fail_channel(at_ps, ch, FailurePolicy::CompleteInFlight);
    }
    for &(s, d, bytes) in flows {
        let path = table.path(s, d).expect("routable flow");
        sim.schedule_message_on_path(0, s, d, bytes, path);
    }
    (sim.run_to_completion(), sim.channel_busy_ps())
}

/// Netsim batched injection of the same matrix and failure schedule.
fn run_batched(
    xgft: &Xgft,
    table: &CompiledRouteTable,
    flows: &[(usize, usize, u64)],
    schedule: &[(u64, usize)],
) -> (SimReport, Vec<u64>) {
    let mut batch = InjectionBatch::with_capacity(flows.len(), 0);
    for &(s, d, bytes) in flows {
        batch.push(0, s, d, bytes, table.path(s, d).expect("routable flow"));
    }
    let mut sim = NetworkSim::new(xgft, cfg());
    for &(at_ps, ch) in schedule {
        sim.fail_channel(at_ps, ch, FailurePolicy::CompleteInFlight);
    }
    sim.schedule_batch(&batch);
    (sim.run_to_completion(), sim.channel_busy_ps())
}

/// Tracesim replay of the same flows over the same table, with the same
/// mid-run failure schedule applied to the inner simulator.
fn run_tracesim(
    xgft: &Xgft,
    table: &CompiledRouteTable,
    flows: &[(usize, usize, u64)],
    schedule: &[(u64, usize)],
) -> Vec<u64> {
    let n = xgft.num_leaves();
    let mut programs: Vec<Vec<RankEvent>> = vec![vec![]; n];
    for (tag, &(s, d, bytes)) in flows.iter().enumerate() {
        programs[s].push(RankEvent::Send {
            dst: d,
            bytes,
            tag: tag as u32,
        });
    }
    for (tag, &(s, d, _)) in flows.iter().enumerate() {
        programs[d].push(RankEvent::Recv {
            src: s,
            tag: tag as u32,
        });
    }
    let trace = Trace::new("fuzz", programs);
    let mut sim = NetworkSim::new(xgft, cfg());
    for &(at_ps, ch) in schedule {
        sim.fail_channel(at_ps, ch, FailurePolicy::CompleteInFlight);
    }
    let mut net = RoutedNetwork::with_compiled(sim, table.clone());
    ReplayEngine::new(&trace)
        .run(&mut net)
        .expect("fully-routed replay cannot deadlock");
    net.sim().channel_busy_ps()
}

/// The drop/repair differential: fail a channel the traffic actually
/// crosses mid-run with the `Drop` policy, repair it later, and inject a
/// couple of follow-up messages over the healed path. Tracesim and the
/// flow model cannot price in-flight drops, so this sub-case asserts the
/// narrower invariant — per-message and batched injection stay
/// bit-identical — plus conservation (delivered + dropped == offered).
fn drop_repair_differential(
    label: &str,
    xgft: &Xgft,
    table: &CompiledRouteTable,
    flows: &[(usize, usize, u64)],
    rng: &mut Rng,
) {
    // A channel some flow actually crosses (the Drop policy is inert on
    // idle channels), plus a fail -> repair -> re-inject timeline drawn
    // at in-flight scale (tens of microseconds at the default 2 Gb/s).
    let first_path = table.path(flows[0].0, flows[0].1).expect("routable flow");
    let victim = first_path[rng.below(first_path.len() as u64) as usize] as usize;
    let t_fail = 1 + rng.below(100_000_000);
    let t_repair = t_fail + 1 + rng.below(100_000_000);
    let mut late: Vec<(u64, usize, usize, u64)> = flows
        .iter()
        .take(2)
        .map(|&(s, d, bytes)| (t_repair + 1 + rng.below(10_000_000), s, d, bytes))
        .collect();
    // `schedule_batch` admits entries in ascending-`at_ps` order; the
    // per-message reference must call in that same order to stay
    // bit-identical, so fix one sorted order for both paths.
    late.sort_by_key(|&(at_ps, ..)| at_ps);
    let offered = flows.len() + late.len();

    let mut per_message = NetworkSim::new(xgft, cfg());
    per_message.fail_channel(t_fail, victim, FailurePolicy::Drop);
    per_message.repair_channel(t_repair, victim);
    for &(s, d, bytes) in flows {
        per_message.schedule_message_on_path(0, s, d, bytes, table.path(s, d).unwrap());
    }
    for &(at_ps, s, d, bytes) in &late {
        per_message.schedule_message_on_path(at_ps, s, d, bytes, table.path(s, d).unwrap());
    }
    let report_ref = per_message.run_to_completion();
    let busy_ref = per_message.channel_busy_ps();

    let mut batch = InjectionBatch::with_capacity(offered, 0);
    for &(s, d, bytes) in flows {
        batch.push(0, s, d, bytes, table.path(s, d).unwrap());
    }
    for &(at_ps, s, d, bytes) in &late {
        batch.push(at_ps, s, d, bytes, table.path(s, d).unwrap());
    }
    let mut batched = NetworkSim::new(xgft, cfg());
    batched.fail_channel(t_fail, victim, FailurePolicy::Drop);
    batched.repair_channel(t_repair, victim);
    batched.schedule_batch(&batch);
    let report_batch = batched.run_to_completion();
    let busy_batch = batched.channel_busy_ps();

    assert_eq!(
        report_ref, report_batch,
        "{label}: drop/repair case — batched injection diverged"
    );
    assert_eq!(
        busy_ref, busy_batch,
        "{label}: drop/repair case — batched busy vector diverged"
    );
    assert_eq!(
        report_ref.completed_messages + report_ref.dropped_messages,
        offered,
        "{label}: drop/repair case — messages neither delivered nor dropped"
    );
}

/// Which of the widened cases one iteration exercised, so the stream can
/// be checked for coverage at the end of the run.
#[derive(Default)]
struct Exercised {
    degraded: bool,
    mid_run_failures: bool,
    drop_repair: bool,
}

/// A random fault set over the machine: uniform link failures, a switch
/// kill or a correlated cable cut at a random level.
fn random_faults(rng: &mut Rng, xgft: &Xgft) -> FaultSet {
    match rng.below(3) {
        0 => FaultSet::uniform_links(xgft, 0.08, rng.next()),
        1 => {
            let level = 1 + rng.below(xgft.height() as u64) as usize;
            FaultSet::random_switch_kills(xgft, level, 1, rng.next())
        }
        _ => {
            let cable_level = 1 + rng.below(xgft.height() as u64 - 1) as usize;
            FaultSet::targeted_level_cut(xgft, cable_level, 1, rng.next())
        }
    }
}

/// One fuzz iteration: draw an instance, run every engine, assert the
/// differential invariants.
fn fuzz_iteration(iter: u64, rng: &mut Rng) -> Exercised {
    let mut exercised = Exercised::default();
    let xgft = random_topology(rng);
    let n = xgft.num_leaves();
    let (scheme_name, algo) = random_scheme(rng, &xgft);
    let (workload_name, all_flows) = random_flows(rng, n);
    if all_flows.is_empty() {
        return exercised;
    }

    let mut table = CompiledRouteTable::compile(
        &xgft,
        algo.as_ref(),
        all_flows.iter().map(|&(s, d, _)| (s, d)),
    );

    // Every third-ish iteration degrades the topology and patches the
    // table, restricting the checked flows to the survivors. The failed
    // channels then double as a mid-run `fail_channel` schedule: the
    // patched routes already avoid them, so firing the failures *during*
    // the run must leave every engine's outcome untouched while the
    // failure events interleave with traffic in the event core.
    let degraded = rng.chance(33);
    let mut schedule: Vec<(u64, usize)> = Vec::new();
    if degraded {
        exercised.degraded = true;
        let faults = random_faults(rng, &xgft);
        table.patch(&xgft, &faults);
        let failed: Vec<usize> = faults.iter_failed().collect();
        for ch in failed.iter().take(3) {
            schedule.push((1 + rng.below(100_000_000), *ch));
        }
        exercised.mid_run_failures = !schedule.is_empty();
    }
    let flows: Vec<(usize, usize, u64)> = all_flows
        .iter()
        .copied()
        .filter(|&(s, d, _)| table.path(s, d).is_some())
        .collect();
    if flows.is_empty() {
        return exercised;
    }

    let label =
        format!("iter {iter}: {n} leaves, {scheme_name}, {workload_name}, degraded={degraded}");

    // Injection-path differential: batched must be bit-identical.
    let (report_ref, busy_ref) = run_per_message(&xgft, &table, &flows, &schedule);
    let (report_batch, busy_batch) = run_batched(&xgft, &table, &flows, &schedule);
    assert_eq!(
        report_ref, report_batch,
        "{label}: batched injection diverged from per-message injection"
    );
    assert_eq!(
        busy_ref, busy_batch,
        "{label}: batched busy vector diverged"
    );
    assert_eq!(
        report_ref.completed_messages,
        flows.len(),
        "{label}: every routable flow must deliver"
    );

    // Engine differential 1: tracesim replay, byte-equal busy times.
    let busy_trace = run_tracesim(&xgft, &table, &flows, &schedule);
    assert_eq!(
        busy_ref, busy_trace,
        "{label}: netsim and tracesim busy vectors diverged"
    );

    // Engine differential 2: the flow model with demands in occupancy-ps
    // units — analytical loads equal simulated busy to float round-off.
    let network = cfg();
    let traffic = TrafficMatrix::from_flows(
        n,
        flows
            .iter()
            .map(|&(s, d, bytes)| (s, d, network.ideal_transfer_ps(bytes) as f64)),
    );
    let model = DegradedLoads::from_compiled(&xgft, &table, &traffic);
    assert!(model.is_fully_routed(), "{label}: checked flows must route");
    let scale = busy_ref.iter().copied().max().unwrap_or(1).max(1) as f64;
    for (idx, (&busy, &load)) in busy_ref.iter().zip(model.loads()).enumerate() {
        assert!(
            (busy as f64 - load).abs() <= 1e-9 * scale,
            "{label}: channel {idx} disagrees — netsim busy {busy} ps vs flow load {load} ps"
        );
    }

    // Every other-ish iteration additionally runs the drop/repair
    // differential on the same instance (in-flight drops, a mid-run
    // repair and post-repair injections; per-message vs batched only).
    if rng.chance(50) {
        exercised.drop_repair = true;
        drop_repair_differential(&label, &xgft, &table, &flows, rng);
    }
    exercised
}

#[test]
fn fuzz_netsim_against_flow_and_tracesim() {
    let iters = std::env::var("XGFT_FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_ITERS);
    let mut rng = Rng(STREAM_SEED);
    let mut degraded = 0u64;
    let mut mid_run = 0u64;
    let mut drop_repair = 0u64;
    for iter in 0..iters {
        let exercised = fuzz_iteration(iter, &mut rng);
        degraded += exercised.degraded as u64;
        mid_run += exercised.mid_run_failures as u64;
        drop_repair += exercised.drop_repair as u64;
    }
    // The fixed stream must keep covering the widened cases: a draw-logic
    // change that silently stops degrading topologies or firing mid-run
    // failures would hollow the differential out without failing anything.
    if iters >= DEFAULT_ITERS {
        assert!(degraded > 0, "stream never degraded a topology");
        assert!(mid_run > 0, "stream never fired mid-run failures");
        assert!(drop_repair > 0, "stream never ran the drop/repair case");
    }
}
