//! Offline stand-in for the crates.io `rayon` crate.
//!
//! The build container has no network access, so this shim provides the one
//! parallel-iterator shape the workspace uses — `slice.par_iter().map(f)
//! .collect()` — implemented with `std::thread::scope` over chunks of the
//! input. Unlike rayon there is no work-stealing pool: each call spawns up
//! to `available_parallelism` scoped threads, which is the right trade-off
//! for the sweep's coarse (topology, algorithm, seed) jobs. Result order is
//! the input order, and worker panics propagate to the caller, both matching
//! rayon's semantics.

#![warn(missing_docs)]

/// The one-stop import surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Types whose elements can be iterated in parallel by reference.
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: Sync + 'a;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A borrowing parallel iterator (the result of [`par_iter`]).
///
/// [`par_iter`]: IntoParallelRefIterator::par_iter
#[derive(Debug)]
pub struct ParIter<'a, T: Sync> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f`, to be evaluated in parallel at
    /// `collect` time.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator awaiting collection.
#[derive(Debug)]
pub struct ParMap<'a, T: Sync, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, F> {
    /// Evaluates the map over all elements — in parallel when the input is
    /// large enough — and collects the results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1));
        if workers <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk_len = n.div_ceil(workers);
        let f = &self.f;
        let chunk_results: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
                })
                .collect()
        });
        chunk_results.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7usize];
        let out: Vec<usize> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            let _: Vec<usize> = items
                .par_iter()
                .map(|&x| if x == 63 { panic!("boom") } else { x })
                .collect();
        });
        assert!(result.is_err());
    }
}
