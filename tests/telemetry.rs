//! Telemetry must never perturb results: the same spec run with telemetry
//! on and off yields a byte-identical deterministic `payload`, and the
//! telemetry section lives strictly outside it (the bare envelope does not
//! even contain the key, which is what keeps the golden fixtures stable).

use serde::Value;
use xgft::analysis::AlgorithmSpec;
use xgft::netsim::NetworkConfig;
use xgft::scenario::{
    run_scenario, EngineSpec, FaultSpec, RepresentationSpec, RunOptions, ScenarioSpec, SchemeSpec,
    SeedSpec, SweepSpec, TopologySpec, WorkloadSpec, SPEC_SCHEMA_VERSION,
};

fn spec() -> ScenarioSpec {
    ScenarioSpec {
        schema_version: SPEC_SCHEMA_VERSION,
        name: "telemetry-integration".to_string(),
        topology: TopologySpec::SlimmedTwoLevel { k: 4, w2: 2 },
        workload: WorkloadSpec::new("wrf", 16, 16 * 1024),
        schemes: vec![
            SchemeSpec(AlgorithmSpec::DModK),
            SchemeSpec(AlgorithmSpec::Random),
        ],
        engine: EngineSpec::Tracesim,
        representation: RepresentationSpec::Compiled,
        faults: FaultSpec::None,
        chaos: None,
        sweep: SweepSpec::over(vec![2]),
        seeds: SeedSpec::List { seeds: vec![1, 2] },
        network: NetworkConfig::default(),
    }
}

fn payload_json(result: &xgft::scenario::ScenarioResult) -> String {
    struct Raw(Value);
    impl serde::Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    serde_json::to_string_pretty(&Raw(serde::Serialize::to_value(&result.payload)))
        .expect("serialisable payload")
}

#[test]
fn telemetry_window_does_not_perturb_the_deterministic_payload() {
    let spec = spec();
    let bare = run_scenario(&spec, &RunOptions::default()).expect("valid scenario");
    let instrumented = run_scenario(
        &spec,
        &RunOptions {
            telemetry: true,
            ..RunOptions::default()
        },
    )
    .expect("valid scenario");

    // Byte-identical payload with the instrumentation window on.
    assert_eq!(payload_json(&bare), payload_json(&instrumented));

    // The window itself observed the run: wall-clock plus per-stage timers.
    let telemetry = instrumented.telemetry.as_ref().expect("telemetry window");
    assert!(telemetry.wall_ns > 0);
    assert!(telemetry.stage("scenario.run").is_some());
    assert!(telemetry.stage("core.compile").is_some());

    // The envelope keeps telemetry strictly outside the pinned payload: a
    // bare run's JSON does not even carry the key, so golden fixtures that
    // pin whole envelopes never see it.
    let bare_json = serde_json::to_string_pretty(&bare).expect("serialisable");
    let instrumented_json = serde_json::to_string_pretty(&instrumented).expect("serialisable");
    assert!(!bare_json.contains("\"telemetry\""));
    assert!(instrumented_json.contains("\"telemetry\""));
}
