//! Fig. 5: the proposed Random NCA Up / Random NCA Down schemes compared
//! against S-mod-k, D-mod-k, Random and the pattern-aware Colored baseline
//! over progressively slimmed `XGFT(2;16,16;1,w2)` topologies, with boxplots
//! over seeds for the randomised schemes.

use crate::experiments::fig2::Workload;
use crate::sweep::{AlgorithmSpec, SweepConfig, SweepResult};
use serde::{Deserialize, Serialize};
use xgft_netsim::NetworkConfig;

/// Parameters of a Fig. 5 run.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Which application to run.
    pub workload: Workload,
    /// Per-message byte scale (1.0 = paper sizes).
    pub byte_scale: f64,
    /// Seeds for the randomised schemes (the paper uses 40–60 per box).
    pub seeds: Vec<u64>,
    /// The w2 values to sweep.
    pub w2_values: Vec<usize>,
    /// Network parameters.
    pub network: NetworkConfig,
}

impl Fig5Config {
    /// Default configuration: full sweep, paper-shaped workloads.
    pub fn new(workload: Workload, byte_scale: f64, seeds: Vec<u64>) -> Self {
        Fig5Config {
            workload,
            byte_scale,
            seeds,
            w2_values: (1..=16).rev().collect(),
            network: NetworkConfig::default(),
        }
    }

    /// Run the sweep with the Fig. 5 algorithm set.
    pub fn run(&self) -> SweepResult {
        let pattern = self.workload.pattern(self.byte_scale);
        let config = SweepConfig {
            k: 16,
            w2_values: self.w2_values.clone(),
            algorithms: AlgorithmSpec::figure5_set(),
            seeds: self.seeds.clone(),
            network: self.network.clone(),
        };
        config.run(&pattern)
    }

    /// The `--analytic` mode: the Fig. 5 scheme set through the `xgft-flow`
    /// closed-form model. The r-NCA schemes contribute their seed-marginal
    /// expectation — the quantity the paper's 40-60-seed boxplots estimate —
    /// in a single exact computation.
    pub fn run_analytic(&self) -> xgft_flow::FlowSweepResult {
        let pattern = self.workload.pattern(self.byte_scale);
        xgft_flow::FlowSweepConfig::slimming_family(
            16,
            &self.w2_values,
            vec![
                xgft_flow::FlowScheme::SModK,
                xgft_flow::FlowScheme::DModK,
                xgft_flow::FlowScheme::Colored,
                xgft_flow::FlowScheme::RNcaUp,
                xgft_flow::FlowScheme::RNcaDown,
                xgft_flow::FlowScheme::Random,
            ],
            xgft_flow::TrafficSpec::Pattern(pattern),
        )
        .run()
    }
}

/// The qualitative claims the paper draws from Fig. 5, checked on a sweep
/// result (used by the integration tests and reported by the binary).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Claims {
    /// r-NCA-u median ≤ Random median on every swept topology.
    pub rnca_u_beats_random_everywhere: bool,
    /// r-NCA-d median ≤ Random median on every swept topology.
    pub rnca_d_beats_random_everywhere: bool,
    /// The worst-case ratio of r-NCA-d to the pattern-aware Colored bound.
    pub worst_gap_to_colored: f64,
}

impl Fig5Claims {
    /// Evaluate the claims on a sweep result.
    pub fn evaluate(result: &SweepResult) -> Fig5Claims {
        let mut u_beats = true;
        let mut d_beats = true;
        let mut worst_gap: f64 = 1.0;
        let w2s: std::collections::BTreeSet<usize> = result.points.iter().map(|p| p.w2).collect();
        for &w2 in &w2s {
            let random = result.point(w2, "random").map(|p| p.stats.median);
            let u = result.point(w2, "r-NCA-u").map(|p| p.stats.median);
            let d = result.point(w2, "r-NCA-d").map(|p| p.stats.median);
            let colored = result.point(w2, "colored").map(|p| p.stats.median);
            if let (Some(r), Some(u)) = (random, u) {
                // Allow 2% tolerance: the paper's claim is statistical.
                if u > 1.02 * r {
                    u_beats = false;
                }
            }
            if let (Some(r), Some(d)) = (random, d) {
                if d > 1.02 * r {
                    d_beats = false;
                }
            }
            if let (Some(c), Some(d)) = (colored, d) {
                worst_gap = worst_gap.max(d / c);
            }
        }
        Fig5Claims {
            rnca_u_beats_random_everywhere: u_beats,
            rnca_d_beats_random_everywhere: d_beats,
            worst_gap_to_colored: worst_gap,
        }
    }

    /// Render the claim summary.
    pub fn render(&self) -> String {
        format!(
            "r-NCA-u <= Random everywhere: {}\nr-NCA-d <= Random everywhere: {}\nworst r-NCA-d / colored gap: {:.2}x\n",
            self.rnca_u_beats_random_everywhere,
            self.rnca_d_beats_random_everywhere,
            self.worst_gap_to_colored
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepConfig;
    use xgft_patterns::generators;

    /// Scaled-down Fig. 5(b): the CG-like congruent pattern on a k = 8
    /// family. The proposed r-NCA-d must avoid the D-mod-k pathology and be
    /// at least as good as Random (statistically).
    #[test]
    fn reduced_fig5_cg_claims() {
        // 64 ranks of CG on XGFT(2;8,8;1,w2): blocks of 8 per switch.
        let cg = generators::cg_d(64, 16 * 1024);
        let fifth = xgft_patterns::Pattern::single_phase("cg-fifth", cg.phases()[4].clone());
        let config = SweepConfig {
            k: 8,
            w2_values: vec![8, 4],
            algorithms: AlgorithmSpec::figure5_set(),
            seeds: vec![1, 2, 3],
            network: NetworkConfig::default(),
        };
        let result = config.run(&fifth);
        let claims = Fig5Claims::evaluate(&result);

        // The pathological D-mod-k vs the proposal on the full tree.
        let dmodk = result.point(8, "d-mod-k").unwrap().stats.median;
        let rnca_d = result.point(8, "r-NCA-d").unwrap().stats.median;
        assert!(
            rnca_d < dmodk,
            "r-NCA-d ({rnca_d:.2}) must avoid the d-mod-k pathology ({dmodk:.2})"
        );
        assert!(claims.worst_gap_to_colored >= 1.0);
        assert!(!claims.render().is_empty());
    }

    /// The analytic Fig. 5: the r-NCA closed forms avoid both the mod-k
    /// wrap imbalance and the CG congruence, w2 by w2, without a single
    /// seed.
    #[test]
    fn analytic_fig5_rnca_beats_mod_k_on_slimmed_trees() {
        let config = Fig5Config {
            workload: Workload::CgD128,
            byte_scale: 1.0,
            seeds: vec![],
            w2_values: vec![16, 10],
            network: NetworkConfig::default(),
        };
        let result = config.run_analytic();
        for w2 in [16usize, 10] {
            let dmodk = result.point_by_w(w2, "d-mod-k").unwrap();
            let rnca = result.point_by_w(w2, "r-NCA-d").unwrap();
            assert!(
                rnca.mcl <= dmodk.mcl,
                "w2={w2}: r-NCA-d {} vs d-mod-k {}",
                rnca.mcl,
                dmodk.mcl
            );
        }
    }

    #[test]
    fn fig5_config_defaults() {
        let cfg = Fig5Config::new(Workload::CgD128, 0.5, vec![1, 2]);
        assert_eq!(cfg.w2_values.len(), 16);
        assert_eq!(cfg.seeds.len(), 2);
    }
}
