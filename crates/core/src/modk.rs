//! S-mod-k and D-mod-k self-routing (Sec. V of the paper).
//!
//! For k-ary n-trees the classic formulation chooses parent
//! `⌊x / k^(l-1)⌋ mod k` at the `l`-th switch hop, with `x` the source node
//! number (S-mod-k, the "self-routing" default of the original fat-tree
//! papers) or the destination number (D-mod-k, independently proposed in
//! several InfiniBand routing works).
//!
//! For general XGFTs the same idea uses the variable-radix label digits of
//! Table I: *the output port chosen at a level-`l` switch (the hop into
//! level `l+1`) is `X_l mod w_{l+1}`*, where `X_l` is the position-`l` digit
//! of the guiding label. The leaf-to-switch hop has `w_1` parents; `w_1 = 1`
//! in every (possibly slimmed) k-ary n-tree, so that hop involves no choice.
//!
//! S-mod-k gives every source a unique ascent (concentrating the source-side
//! endpoint contention onto links that must be shared anyway), D-mod-k gives
//! every destination a unique descent, and destinations that share a
//! first-level switch spread over the `w_2` roots through the `d mod w_2`
//! term — unless the application pattern is congruent with the modulo, the
//! CG.D-128 pathology of Sec. VII-A (Eq. 2). Sec. VII-B/C of the paper shows
//! the two schemes are combinatorially equivalent over permutations and
//! well-randomised general patterns.

use crate::algorithm::RoutingAlgorithm;
use crate::route_dist::RouteDistribution;
use xgft_topo::{Route, Xgft};

/// Compute the mod-k up-port sequence guided by `guide_leaf`, climbing to
/// `level`.
pub(crate) fn mod_route(xgft: &Xgft, guide_leaf: usize, level: usize) -> Route {
    let spec = xgft.spec();
    let ports = (0..level)
        .map(|l| {
            if l == 0 {
                // The leaf's adapter hop: a single parent in every k-ary-like
                // tree; spread by the low digit if the leaf is multi-ported.
                if spec.w(1) == 1 {
                    0
                } else {
                    xgft.leaf_digit(guide_leaf, 1) % spec.w(1)
                }
            } else {
                xgft.leaf_digit(guide_leaf, l) % spec.w(l + 1)
            }
        })
        .collect();
    Route::new(ports)
}

/// Source-mod-k routing: the ascent is determined by the source label alone.
#[derive(Debug, Clone, Copy, Default)]
pub struct SModK;

impl SModK {
    /// Create the algorithm (stateless).
    pub fn new() -> Self {
        SModK
    }
}

impl RoutingAlgorithm for SModK {
    fn name(&self) -> String {
        "s-mod-k".to_string()
    }

    fn route(&self, xgft: &Xgft, s: usize, d: usize) -> Route {
        mod_route(xgft, s, xgft.nca_level(s, d))
    }
}

/// Deterministic: the default point-mass route distribution is exact.
impl RouteDistribution for SModK {}

/// Destination-mod-k routing: the ascent (and hence the NCA) is determined
/// by the destination label alone, so the descent to each destination is
/// unique.
#[derive(Debug, Clone, Copy, Default)]
pub struct DModK;

impl DModK {
    /// Create the algorithm (stateless).
    pub fn new() -> Self {
        DModK
    }
}

impl RoutingAlgorithm for DModK {
    fn name(&self) -> String {
        "d-mod-k".to_string()
    }

    fn route(&self, xgft: &Xgft, s: usize, d: usize) -> Route {
        mod_route(xgft, d, xgft.nca_level(s, d))
    }
}

/// Deterministic: the default point-mass route distribution is exact.
impl RouteDistribution for DModK {}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft_topo::XgftSpec;

    #[test]
    fn s_mod_k_matches_classic_formula_on_k_ary_n_tree() {
        // Paper formula: at the l-th switch hop, port = floor(s/k^(l-1)) mod k.
        // In XGFT terms the l-th switch hop is the ascent from level l to
        // level l+1, so route.up_port(l) = digit_l(s) for l >= 1.
        let xgft = Xgft::k_ary_n_tree(4, 3);
        let k = 4usize;
        let algo = SModK::new();
        for s in [0usize, 7, 33, 63] {
            for d in 0..xgft.num_leaves() {
                if s == d {
                    continue;
                }
                let route = algo.route(&xgft, s, d);
                assert_eq!(route.up_port(0), 0, "leaf hop has a single parent");
                for l in 1..route.nca_level() {
                    assert_eq!(
                        route.up_port(l),
                        (s / k.pow((l - 1) as u32)) % k,
                        "s={s} d={d} switch hop {l}"
                    );
                }
            }
        }
    }

    #[test]
    fn d_mod_k_uses_destination_low_digits() {
        let xgft = Xgft::k_ary_n_tree(4, 2);
        let algo = DModK::new();
        // d = 14 has digits (d1, d2) = (2, 3); the root is chosen by d1.
        let route = algo.route(&xgft, 1, 14);
        assert_eq!(route.up_ports(), &[0, 2]);
        // All sources use the same root for a given destination.
        for s in 0..16 {
            if xgft.nca_level(s, 14) == 2 {
                assert_eq!(algo.route(&xgft, s, 14).up_port(1), 2);
            }
        }
    }

    #[test]
    fn routes_are_always_valid() {
        let xgft = Xgft::new(XgftSpec::new(vec![4, 4, 4], vec![1, 3, 2]).unwrap()).unwrap();
        for algo in [&SModK::new() as &dyn RoutingAlgorithm, &DModK::new()] {
            for s in (0..xgft.num_leaves()).step_by(7) {
                for d in (0..xgft.num_leaves()).step_by(5) {
                    let route = algo.route(&xgft, s, d);
                    assert!(xgft.validate_route(s, d, &route).is_ok());
                }
            }
        }
    }

    #[test]
    fn s_mod_k_concentrates_source_ascent() {
        // Every source keeps exactly the same ascent regardless of the
        // destination (as long as the NCA level is the same).
        let xgft = Xgft::k_ary_n_tree(8, 2);
        let algo = SModK::new();
        let s = 13usize;
        let mut ascents = std::collections::HashSet::new();
        for d in 0..xgft.num_leaves() {
            if xgft.nca_level(s, d) == 2 {
                ascents.insert(algo.route(&xgft, s, d).up_ports().to_vec());
            }
        }
        assert_eq!(ascents.len(), 1);
    }

    #[test]
    fn d_mod_k_concentrates_destination_descent() {
        // Every destination is reached through exactly one NCA no matter the
        // source.
        let xgft = Xgft::k_ary_n_tree(8, 2);
        let algo = DModK::new();
        let d = 42usize;
        let mut ncas = std::collections::HashSet::new();
        for s in 0..xgft.num_leaves() {
            if xgft.nca_level(s, d) == 2 {
                let route = algo.route(&xgft, s, d);
                ncas.insert(xgft.nca_of_route(s, &route).unwrap());
            }
        }
        assert_eq!(ncas.len(), 1);
    }

    #[test]
    fn d_mod_k_spreads_switch_local_destinations_over_roots() {
        // The 16 destinations of one first-level switch map onto 16 distinct
        // roots in the full 16-ary 2-tree.
        let xgft = Xgft::new(XgftSpec::slimmed_two_level(16, 16).unwrap()).unwrap();
        let algo = DModK::new();
        let s = 200usize; // a source outside the first switch
        let roots: std::collections::HashSet<usize> = (0..16)
            .map(|d| algo.route(&xgft, s, d).up_port(1))
            .collect();
        assert_eq!(roots.len(), 16);
    }

    #[test]
    fn slimmed_tree_ports_respect_reduced_width() {
        // XGFT(2;16,16;1,10): the root chosen by D-mod-k is d_1 mod 10, so
        // destinations with digit 10..15 wrap onto roots 0..5 (the imbalance
        // discussed around Fig. 4(b)).
        let xgft = Xgft::new(XgftSpec::slimmed_two_level(16, 10).unwrap()).unwrap();
        let algo = DModK::new();
        for d in [0usize, 37, 170, 255] {
            for s in [1usize, 20, 100] {
                if xgft.nca_level(s, d) != 2 {
                    continue;
                }
                let route = algo.route(&xgft, s, d);
                assert_eq!(route.up_port(1), xgft.leaf_digit(d, 1) % 10);
                assert!(route.up_port(1) < 10);
            }
        }
    }

    #[test]
    fn cg_pathology_roots_collapse_to_two() {
        // The CG.D-128 fifth phase (Eq. 2): d = (s/2)*16 + (s mod 2) for the
        // sources of one switch; under D-mod-k the chosen root is d mod 16,
        // which can only be 0 or 1 — eight flows behind each of two up-links.
        let xgft = Xgft::new(XgftSpec::slimmed_two_level(16, 16).unwrap()).unwrap();
        let algo = DModK::new();
        let mut roots = std::collections::HashSet::new();
        for s in 0..16usize {
            let d = (s / 2) * 16 + (s % 2);
            if s == d {
                continue;
            }
            let route = algo.route(&xgft, s, d);
            roots.insert(route.up_port(1));
        }
        assert!(
            roots.len() <= 2,
            "D-mod-k must collapse onto <= 2 roots, got {roots:?}"
        );
        assert!(roots.is_subset(&[0usize, 1].into_iter().collect()));
    }

    #[test]
    fn s_and_d_mod_k_agree_on_symmetric_pair_swap() {
        // Routing (s, d) with S-mod-k chooses the same NCA as routing (d, s)
        // with D-mod-k — the inverse-pattern duality of Sec. VII-B.
        let xgft = Xgft::new(XgftSpec::slimmed_two_level(8, 5).unwrap()).unwrap();
        let s_algo = SModK::new();
        let d_algo = DModK::new();
        for s in 0..xgft.num_leaves() {
            for d in 0..xgft.num_leaves() {
                if s == d {
                    continue;
                }
                let r_s = s_algo.route(&xgft, s, d);
                let r_d = d_algo.route(&xgft, d, s);
                assert_eq!(r_s.up_ports(), r_d.up_ports(), "s={s} d={d}");
            }
        }
    }
}
