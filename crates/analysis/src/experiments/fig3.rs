//! Fig. 3: the CG.D-128 traffic pattern (execution phases and communication
//! matrix).
//!
//! The paper's figure shows (a) the execution trace with its five exchange
//! phases and (b) the 128×128 communication matrix. This driver reports the
//! same information in text form: per-phase locality statistics and a
//! block-structure rendering of the combined matrix.

use serde::{Deserialize, Serialize};
use xgft_patterns::generators;
use xgft_patterns::Pattern;

/// Statistics of one CG phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase index (0-based; phase 4 is the non-local transpose exchange).
    pub phase: usize,
    /// Number of network messages in the phase.
    pub messages: usize,
    /// Messages whose endpoints share a first-level switch (blocks of 16).
    pub switch_local: usize,
    /// Bytes per message.
    pub bytes_per_message: u64,
}

/// The Fig. 3 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Number of ranks.
    pub ranks: usize,
    /// Per-phase statistics.
    pub phases: Vec<PhaseStats>,
    /// The combined communication matrix collapsed to 16-rank blocks:
    /// `block_matrix[i][j]` is the number of messages from block i to
    /// block j.
    pub block_matrix: Vec<Vec<usize>>,
}

/// Build the Fig. 3 reproduction for the paper's CG.D-128 (or a scaled rank
/// count for quick runs).
pub fn run(ranks: usize, bytes: u64) -> Fig3Result {
    let pattern: Pattern = generators::cg_d(ranks, bytes);
    let block = 16usize;
    let num_blocks = ranks.div_ceil(block);
    let mut phases = Vec::new();
    let mut block_matrix = vec![vec![0usize; num_blocks]; num_blocks];
    for (idx, phase) in pattern.phases().iter().enumerate() {
        let mut messages = 0usize;
        let mut switch_local = 0usize;
        let mut bytes_per_message = 0u64;
        for f in phase.network_flows() {
            messages += 1;
            bytes_per_message = f.bytes;
            if f.src / block == f.dst / block {
                switch_local += 1;
            }
            block_matrix[f.src / block][f.dst / block] += 1;
        }
        phases.push(PhaseStats {
            phase: idx,
            messages,
            switch_local,
            bytes_per_message,
        });
    }
    Fig3Result {
        ranks,
        phases,
        block_matrix,
    }
}

impl Fig3Result {
    /// Render the per-phase table and the block matrix.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# Fig. 3 — CG.D-{} traffic pattern (five exchange phases)\n",
            self.ranks
        ));
        out.push_str(&format!(
            "{:>6} {:>10} {:>14} {:>16}\n",
            "phase", "messages", "switch-local", "bytes/message"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:>6} {:>10} {:>14} {:>16}\n",
                p.phase, p.messages, p.switch_local, p.bytes_per_message
            ));
        }
        out.push_str("\nCommunication matrix collapsed to 16-rank blocks (messages):\n");
        for row in &self.block_matrix {
            let cells: Vec<String> = row.iter().map(|c| format!("{c:>4}")).collect();
            out.push_str(&cells.join(" "));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_d_128_phase_structure_matches_the_paper() {
        let result = run(128, 750 * 1024);
        assert_eq!(result.phases.len(), 5);
        // The first four phases are entirely switch-local...
        for p in &result.phases[..4] {
            assert_eq!(p.messages, 128);
            assert_eq!(p.switch_local, p.messages, "phase {} leaks", p.phase);
            assert_eq!(p.bytes_per_message, 750 * 1024);
        }
        // ...and the fifth is (almost entirely) non-local.
        let fifth = &result.phases[4];
        assert_eq!(fifth.messages, 112);
        assert!(fifth.switch_local * 10 < fifth.messages);
        // The block matrix has a strong diagonal (local phases).
        for b in 0..8 {
            assert!(result.block_matrix[b][b] >= 4 * 16);
        }
        let text = result.render();
        assert!(text.contains("phase"));
        assert!(text.contains("768000"), "750 KB = 768000 bytes per message");
    }

    #[test]
    fn scaled_down_variant_keeps_the_shape() {
        let result = run(64, 1024);
        assert_eq!(result.phases.len(), 5);
        assert!(result.phases[..4]
            .iter()
            .all(|p| p.switch_local == p.messages));
    }
}
