//! Workspace-level acceptance checks for the `xgft-flow` analytical model,
//! exercised through the umbrella crate's public API.

use std::time::Instant;
use xgft::flow::{ExpectedLoads, TrafficMatrix};
use xgft::prelude::*;

/// The scale criterion: exact expected MCL for the randomised closed forms
/// on a >= 16 384-leaf XGFT in (well) under a second. The committed
/// Criterion bench (`crates/bench/benches/flow_mcl.rs`) measures ~1 ms; the
/// bound here is generous so the check never flakes on slow CI runners.
#[test]
fn closed_form_mcl_on_16384_leaves_is_subsecond() {
    let xgft = Xgft::new(XgftSpec::new(vec![128, 128], vec![1, 64]).unwrap()).unwrap();
    assert!(xgft.num_leaves() >= 16_384);
    let traffic = TrafficMatrix::uniform(xgft.num_leaves());

    let start = Instant::now();
    let random = ExpectedLoads::compute(&xgft, &RandomRouting::new(0), &traffic);
    let rnca = ExpectedLoads::compute(&xgft, &RandomNcaDown::new(&xgft, 0), &traffic);
    let elapsed = start.elapsed();

    assert!(
        elapsed.as_secs_f64() < 1.0,
        "closed-form MCL took {elapsed:?} for two schemes on 16 384 leaves"
    );
    // Level-1 up channels dominate: 128 leaves/switch x 16 256 cross-switch
    // partners / 64 roots.
    let expected = 128.0 * (127.0 * 128.0) / 64.0;
    assert!((random.mcl() - expected).abs() < 1e-6);
    assert!((rnca.mcl() - expected).abs() < 1e-6);
}

/// The routing-scheme hierarchy the paper establishes, reproduced from the
/// closed forms alone on the slimmed sweep family.
#[test]
fn analytic_sweep_reproduces_the_papers_scheme_ordering() {
    use xgft::flow::{FlowScheme, FlowSweepConfig};
    let result = FlowSweepConfig::slimming_family(
        16,
        &[16, 10, 5],
        FlowScheme::oblivious_set(),
        TrafficSpec::Uniform,
    )
    .run();
    for w2 in [16usize, 10, 5] {
        let rnca = result.point_by_w(w2, "r-NCA-d").unwrap();
        let dmodk = result.point_by_w(w2, "d-mod-k").unwrap();
        // The balanced relabeling never loses to the modulo wrap, and meets
        // the cut bound exactly on every topology.
        assert!(rnca.mcl <= dmodk.mcl + 1e-9, "w2={w2}");
        assert!((rnca.ratio - 1.0).abs() < 1e-9, "w2={w2}");
    }
}
