//! Property tests of the compiled route-table representation: on randomized
//! XGFT specs, [`CompiledRouteTable`] must agree with the HashMap
//! [`RouteTable`] route-for-route for **every** algorithm spec evaluated by
//! Figures 2 and 5 — including the miss path of partially-built tables and
//! the lossless bridge in both directions.

use proptest::prelude::*;
use xgft_analysis::AlgorithmSpec;
use xgft_core::{CompiledRouteTable, RouteTable};
use xgft_patterns::{generators, Pattern};
use xgft_topo::{Xgft, XgftSpec};

/// Small two- and three-level specs with optional slimming (the same family
/// the core property tests randomize over).
fn small_spec() -> impl Strategy<Value = XgftSpec> {
    prop_oneof![
        (2usize..=6, 1usize..=6)
            .prop_map(|(k, w2)| XgftSpec::new(vec![k, k], vec![1, w2.min(k)]).expect("valid")),
        (2usize..=3, 2usize..=3, 2usize..=3, 1usize..=3, 1usize..=3).prop_map(
            |(m1, m2, m3, w2, w3)| XgftSpec::new(vec![m1, m2, m3], vec![1, w2, w3]).expect("valid")
        ),
    ]
}

/// Every algorithm spec that appears in Fig. 2 or Fig. 5.
fn figure_algorithms() -> Vec<AlgorithmSpec> {
    let mut algos = AlgorithmSpec::figure2_set();
    for a in AlgorithmSpec::figure5_set() {
        if !algos.contains(&a) {
            algos.push(a);
        }
    }
    algos
}

/// A deterministic quasi-random pair list for the miss-path tests.
fn sparse_pairs(n: usize, salt: u64) -> Vec<(usize, usize)> {
    (0..n)
        .map(|s| {
            let d = (s as u64).wrapping_mul(salt | 1).wrapping_add(salt >> 3) as usize % n;
            (s, d)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All-pairs agreement: same routes, same expanded channel paths, for
    /// every figure algorithm on every sampled topology.
    #[test]
    fn compiled_agrees_with_hash_for_every_figure_algorithm(
        spec in small_spec(),
        seed in 0u64..1000,
    ) {
        let xgft = Xgft::new(spec).unwrap();
        let n = xgft.num_leaves();
        // Pattern-aware specs (Colored) see a shift pattern; oblivious ones
        // ignore it.
        let pattern: Pattern = generators::shift(n, 1, 4 * 1024);
        for algo_spec in figure_algorithms() {
            let algo = algo_spec.instantiate(&xgft, &pattern, seed);
            let table = RouteTable::build_all_pairs(&xgft, algo.as_ref());
            let compiled = CompiledRouteTable::from_table(&xgft, &table);
            prop_assert_eq!(compiled.len(), table.len());
            prop_assert_eq!(compiled.algorithm(), table.algorithm());
            prop_assert_eq!(compiled.is_pattern_aware(), table.is_pattern_aware());
            for s in 0..n {
                for d in 0..n {
                    prop_assert_eq!(
                        compiled.route(s, d),
                        table.route(s, d).cloned(),
                        "{} on {} pair ({s},{d})",
                        algo_spec.name(),
                        xgft.spec()
                    );
                    if let Some(route) = table.route(s, d) {
                        let expanded = xgft.route_channels(s, d, route).unwrap();
                        let path: Vec<usize> = compiled
                            .path(s, d)
                            .unwrap()
                            .iter()
                            .map(|&c| c as usize)
                            .collect();
                        prop_assert_eq!(path, expanded);
                    }
                }
            }
            // Compiling straight from the algorithm matches compiling the
            // hash table (algorithms are deterministic once constructed).
            let direct = CompiledRouteTable::compile_all_pairs(&xgft, algo.as_ref());
            for s in 0..n {
                for d in 0..n {
                    prop_assert_eq!(direct.path(s, d), compiled.path(s, d));
                }
            }
        }
    }

    /// Miss path and lossless bridge on partially-built tables: absent
    /// pairs miss in both representations, and hash → compiled → hash is
    /// the identity.
    #[test]
    fn partial_tables_agree_on_misses_and_round_trip(
        spec in small_spec(),
        seed in 0u64..1000,
        salt in 1u64..10_000,
    ) {
        let xgft = Xgft::new(spec).unwrap();
        let n = xgft.num_leaves();
        let pattern: Pattern = generators::shift(n, 1, 4 * 1024);
        let pairs = sparse_pairs(n, salt);
        for algo_spec in figure_algorithms() {
            let algo = algo_spec.instantiate(&xgft, &pattern, seed);
            let table = RouteTable::build(&xgft, algo.as_ref(), pairs.iter().copied());
            let compiled = CompiledRouteTable::compile(&xgft, algo.as_ref(), pairs.iter().copied());
            prop_assert_eq!(compiled.len(), table.len());
            for s in 0..n {
                for d in 0..n {
                    match table.route(s, d) {
                        Some(route) => {
                            prop_assert_eq!(compiled.route(s, d).as_ref(), Some(route));
                        }
                        None => {
                            prop_assert!(
                                compiled.path(s, d).is_none(),
                                "pair ({s},{d}) must miss in the compiled table too"
                            );
                            prop_assert!(compiled.route(s, d).is_none());
                        }
                    }
                }
            }
            // Lossless bridge back to hash form.
            let back = compiled.to_table();
            prop_assert_eq!(back.len(), table.len());
            for (&(s, d), route) in table.iter() {
                prop_assert_eq!(back.route(s, d), Some(route));
            }
            prop_assert!(compiled.validate(&xgft).is_ok());
        }
    }
}
