//! Named, possibly multi-phase workload patterns.

use crate::matrix::ConnectivityMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A named communication pattern made of one or more *phases*.
///
/// A phase corresponds to a communication step of the application in which
/// all its messages are outstanding simultaneously (the paper's Sec. III:
/// programmers either schedule a series of permutations or inject everything
/// at once). CG.D-128 has five phases; WRF-256 has a single phase of
/// pairwise exchanges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    name: String,
    num_nodes: usize,
    phases: Vec<ConnectivityMatrix>,
}

impl Pattern {
    /// Build a pattern from its phases.
    ///
    /// # Panics
    /// Panics if no phase is given or the phases disagree on the node count.
    pub fn new(name: impl Into<String>, phases: Vec<ConnectivityMatrix>) -> Self {
        assert!(!phases.is_empty(), "a pattern needs at least one phase");
        let num_nodes = phases[0].num_nodes();
        assert!(
            phases.iter().all(|p| p.num_nodes() == num_nodes),
            "all phases must cover the same node count"
        );
        Pattern {
            name: name.into(),
            num_nodes,
            phases,
        }
    }

    /// Build a single-phase pattern.
    pub fn single_phase(name: impl Into<String>, matrix: ConnectivityMatrix) -> Self {
        Pattern::new(name, vec![matrix])
    }

    /// The pattern's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks/nodes the pattern is defined over.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// The phases in execution order.
    pub fn phases(&self) -> &[ConnectivityMatrix] {
        &self.phases
    }

    /// The union of all phases: the full connectivity matrix of the
    /// application, which is what oblivious route construction sees.
    pub fn combined(&self) -> ConnectivityMatrix {
        let mut all = ConnectivityMatrix::new(self.num_nodes);
        for phase in &self.phases {
            all = all.union(phase);
        }
        all
    }

    /// Total bytes across every phase.
    pub fn total_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.total_bytes()).sum()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nodes, {} phases, {} bytes)",
            self.name,
            self.num_nodes,
            self.num_phases(),
            self.total_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_phase_combination() {
        let mut a = ConnectivityMatrix::new(4);
        a.add_flow(0, 1, 10);
        let mut b = ConnectivityMatrix::new(4);
        b.add_flow(1, 0, 20);
        b.add_flow(0, 1, 5);
        let p = Pattern::new("toy", vec![a, b]);
        assert_eq!(p.num_phases(), 2);
        assert_eq!(p.total_bytes(), 35);
        let c = p.combined();
        assert_eq!(c.bytes(0, 1), 15);
        assert_eq!(c.bytes(1, 0), 20);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_pattern_rejected() {
        let _ = Pattern::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "same node count")]
    fn mismatched_phase_sizes_rejected() {
        let _ = Pattern::new(
            "bad",
            vec![ConnectivityMatrix::new(4), ConnectivityMatrix::new(8)],
        );
    }

    #[test]
    fn display_and_single_phase() {
        let mut a = ConnectivityMatrix::new(2);
        a.add_flow(0, 1, 1);
        let p = Pattern::single_phase("tiny", a);
        assert!(p.to_string().contains("tiny"));
        assert_eq!(p.num_nodes(), 2);
    }
}
