//! Routes-per-NCA distributions (Fig. 4 of the paper).
//!
//! Fig. 4 plots, for each root switch (NCA), the number of routes a routing
//! algorithm assigns to it over the complete set of (source, destination)
//! pairs. An even distribution is necessary — but, as the paper shows, not
//! sufficient — for good performance.

use crate::table::RouteTable;
use xgft_topo::Xgft;

/// Count how many routes of `table` have their apex (NCA) at each node of
/// `level`, restricted to the pairs in `flows` whose NCA level equals
/// `level`.
///
/// The returned vector has one entry per node of `level`, indexed by the
/// node's index within the level (the "NCA number" of Fig. 4).
pub fn nca_route_distribution(
    xgft: &Xgft,
    table: &RouteTable,
    flows: impl IntoIterator<Item = (usize, usize)>,
    level: usize,
) -> Vec<usize> {
    let mut counts = vec![0usize; xgft.nodes_at_level(level)];
    for (s, d) in flows {
        if s == d || xgft.nca_level(s, d) != level {
            continue;
        }
        let Some(route) = table.route(s, d) else {
            continue;
        };
        let nca = xgft
            .nca_of_route(s, route)
            .expect("routes stored in a table are valid");
        counts[nca.index] += 1;
    }
    counts
}

/// Convenience: the Fig. 4 distribution over *all* ordered pairs whose NCAs
/// are at the top level.
pub fn top_level_distribution_all_pairs(xgft: &Xgft, table: &RouteTable) -> Vec<usize> {
    let n = xgft.num_leaves();
    let pairs = (0..n).flat_map(move |s| (0..n).map(move |d| (s, d)));
    nca_route_distribution(xgft, table, pairs, xgft.height())
}

/// Simple imbalance measure of a distribution: `(max − min)` over the mean.
/// Zero means perfectly even.
pub fn imbalance(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    let max = *counts.iter().max().unwrap() as f64;
    let min = *counts.iter().min().unwrap() as f64;
    let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
    if mean == 0.0 {
        0.0
    } else {
        (max - min) / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modk::{DModK, SModK};
    use crate::random::RandomRouting;
    use crate::rnca::RandomNcaDown;
    use xgft_topo::XgftSpec;

    fn tree(w2: usize) -> Xgft {
        Xgft::new(XgftSpec::slimmed_two_level(16, w2).unwrap()).unwrap()
    }

    #[test]
    fn full_tree_mod_k_distribution_is_perfectly_even() {
        // Fig. 4(a): on XGFT(2;16,16;1,16) S-mod-k and D-mod-k assign exactly
        // the same number of routes to every root: 256*240/16 = 3840.
        let xgft = tree(16);
        for algo in [&SModK::new() as &dyn crate::RoutingAlgorithm, &DModK::new()] {
            let table = RouteTable::build_all_pairs(&xgft, algo);
            let dist = top_level_distribution_all_pairs(&xgft, &table);
            assert_eq!(dist.len(), 16);
            assert!(dist.iter().all(|&c| c == 3840), "{dist:?}");
            assert_eq!(imbalance(&dist), 0.0);
        }
    }

    #[test]
    fn slimmed_tree_mod_k_distribution_shows_the_wrap_imbalance() {
        // Fig. 4(b): on XGFT(2;16,16;1,10) the modulo wrap loads roots 0-5
        // with the routes of digit values 10-15 as well, so they carry ~1.67x
        // the routes of roots 6-9.
        let xgft = tree(10);
        let table = RouteTable::build_all_pairs(&xgft, &DModK::new());
        let dist = top_level_distribution_all_pairs(&xgft, &table);
        assert_eq!(dist.len(), 10);
        let low: Vec<usize> = dist[..6].to_vec();
        let high: Vec<usize> = dist[6..].to_vec();
        assert!(low.iter().all(|&c| c == 2 * 16 * 240));
        assert!(high.iter().all(|&c| c == 16 * 240));
        assert!(imbalance(&dist) > 0.3);
    }

    #[test]
    fn random_and_rnca_distributions_are_more_even_than_mod_k_on_slimmed_tree() {
        let xgft = tree(10);
        let dmodk = RouteTable::build_all_pairs(&xgft, &DModK::new());
        let dmodk_imb = imbalance(&top_level_distribution_all_pairs(&xgft, &dmodk));
        let random = RouteTable::build_all_pairs(&xgft, &RandomRouting::new(2));
        let rnca = RouteTable::build_all_pairs(&xgft, &RandomNcaDown::new(&xgft, 2));
        for table in [&random, &rnca] {
            let dist = top_level_distribution_all_pairs(&xgft, table);
            assert_eq!(dist.iter().sum::<usize>(), 256 * 240);
            let imb = imbalance(&dist);
            assert!(
                imb < dmodk_imb,
                "{} imbalance {:.3} should beat d-mod-k's {:.3}",
                table.algorithm(),
                imb,
                dmodk_imb
            );
        }
        // Pure Random is close to uniform over ~61k routes.
        assert!(imbalance(&top_level_distribution_all_pairs(&xgft, &random)) < 0.1);
    }

    #[test]
    fn distribution_only_counts_requested_level() {
        let xgft = tree(16);
        let table = RouteTable::build_all_pairs(&xgft, &DModK::new());
        // Intra-switch pairs have their NCA at level 1.
        let intra_pairs: Vec<(usize, usize)> =
            (0..16).flat_map(|s| (0..16).map(move |d| (s, d))).collect();
        let level1 = nca_route_distribution(&xgft, &table, intra_pairs.iter().copied(), 1);
        assert_eq!(level1.iter().sum::<usize>(), 16 * 15);
        assert_eq!(level1[0], 16 * 15);
        let level2 = nca_route_distribution(&xgft, &table, intra_pairs.iter().copied(), 2);
        assert_eq!(level2.iter().sum::<usize>(), 0);
    }

    #[test]
    fn imbalance_edge_cases() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0, 0, 0]), 0.0);
        assert_eq!(imbalance(&[5, 5, 5]), 0.0);
        assert!(imbalance(&[10, 0]) > 1.9);
    }
}
