//! Property tests: [`ScenarioSpec`] serde round-trips are lossless for
//! randomized specs, through **both** wire formats — JSON (`serde_json`)
//! and TOML (`xgft_scenario::toml`).
//!
//! This is the contract the whole declarative layer rests on: a spec
//! written by one tool (or by hand, in either format) reloads to exactly
//! the value the runner would have seen in-process.

use proptest::prelude::*;
use xgft_analysis::AlgorithmSpec;
use xgft_netsim::{NetworkConfig, SwitchingMode};
use xgft_scenario::{
    toml, ChaosSpec, EngineSpec, FaultSpec, RepresentationSpec, ScenarioSpec, SchemeSpec, SeedSpec,
    SweepSpec, TopologySpec, WorkloadSpec, SPEC_SCHEMA_VERSION,
};

fn topology() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        (2usize..=16, 1usize..=16)
            .prop_map(|(k, w2)| TopologySpec::SlimmedTwoLevel { k, w2: w2.min(k) }),
        (2usize..=4, 1usize..=3).prop_map(|(k, n)| TopologySpec::KAryNTree { k, n }),
        (2usize..=4, 1usize..=4).prop_map(|(m, w)| TopologySpec::Custom {
            m: vec![m, m, m],
            w: vec![1, w, w],
        }),
    ]
}

fn workload() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        (4usize..=64, 1u64..=1 << 20).prop_map(|(n, bytes)| WorkloadSpec::new("wrf", n * n, bytes)),
        (2usize..=256, 1u64..=1 << 20, 0usize..=255).prop_map(|(n, bytes, offset)| {
            WorkloadSpec::new("shift", n, bytes).with_param("offset", offset as f64)
        }),
        (4usize..=128, 1u64..=1 << 20, 1usize..=4, 0u32..=100).prop_map(
            |(n, bytes, spots, skew)| {
                WorkloadSpec::new("hot_spot", n, bytes)
                    .with_param("spots", spots as f64)
                    .with_param("skew", skew as f64 / 100.0)
            }
        ),
        (3usize..=99, 1u64..=1 << 20).prop_map(|(n, bytes)| WorkloadSpec::new("tornado", n, bytes)),
        (2usize..=64, 1u64..=1 << 20, 1usize..=8, 1usize..=4).prop_map(|(n, bytes, k, shifts)| {
            WorkloadSpec::new("k_shift", n, bytes)
                .with_param("k", k as f64)
                .with_param("shifts", shifts as f64)
        }),
    ]
}

fn schemes() -> impl Strategy<Value = Vec<SchemeSpec>> {
    proptest::collection::vec(
        prop_oneof![
            Just(SchemeSpec(AlgorithmSpec::Random)),
            Just(SchemeSpec(AlgorithmSpec::SModK)),
            Just(SchemeSpec(AlgorithmSpec::DModK)),
            Just(SchemeSpec(AlgorithmSpec::RandomNcaUp)),
            Just(SchemeSpec(AlgorithmSpec::RandomNcaDown)),
            Just(SchemeSpec(AlgorithmSpec::Colored)),
        ],
        1..=6,
    )
}

fn representation() -> impl Strategy<Value = RepresentationSpec> {
    prop_oneof![
        Just(RepresentationSpec::Compiled),
        Just(RepresentationSpec::Compact),
    ]
}

fn engine() -> impl Strategy<Value = EngineSpec> {
    prop_oneof![
        Just(EngineSpec::Tracesim),
        Just(EngineSpec::Netsim),
        Just(EngineSpec::Flow),
        Just(EngineSpec::Nca),
        Just(EngineSpec::AllWithAgreement),
    ]
}

fn faults() -> impl Strategy<Value = FaultSpec> {
    prop_oneof![
        Just(FaultSpec::None),
        (proptest::collection::vec(0u32..=1000, 1..=4), 1usize..=8).prop_map(
            |(permille, draws_per_point)| FaultSpec::UniformLinks {
                permille,
                draws_per_point,
            }
        ),
    ]
}

fn chaos() -> impl Strategy<Value = Option<ChaosSpec>> {
    prop_oneof![
        Just(None),
        (
            1usize..=16,
            1u64..=1 << 40,
            0u32..=1000,
            0u32..=1000,
            0u32..=1000,
            0usize..=4
        )
            .prop_map(|(epochs, epoch_ps, link, kill, cut, repair_epochs)| {
                Some(ChaosSpec {
                    epochs,
                    epoch_ps,
                    link_fail_permille: link,
                    switch_kill_permille: kill,
                    cable_cut_permille: cut,
                    repair_epochs,
                })
            }),
    ]
}

fn seeds() -> impl Strategy<Value = SeedSpec> {
    prop_oneof![
        proptest::collection::vec(0u64..=u64::MAX / 2, 0..=8)
            .prop_map(|seeds| SeedSpec::List { seeds }),
        (0u64..=u64::MAX / 2, 1usize..=64).prop_map(|(base_seed, seeds_per_point)| {
            SeedSpec::Stream {
                base_seed,
                seeds_per_point,
            }
        }),
    ]
}

fn network() -> impl Strategy<Value = NetworkConfig> {
    (
        1u32..=40,
        1u64..=64,
        1u64..=8,
        0u64..=500,
        1usize..=16,
        0u8..=1,
    )
        .prop_map(
            |(gbps_tenths, flit, seg_flits, latency, buffers, mode)| NetworkConfig {
                link_bandwidth_gbps: gbps_tenths as f64 / 10.0,
                flit_bytes: flit,
                segment_bytes: flit * seg_flits,
                switch_latency_ns: latency,
                input_buffer_segments: buffers,
                switching: if mode == 0 {
                    SwitchingMode::StoreAndForward
                } else {
                    SwitchingMode::CutThrough
                },
            },
        )
}

fn scenario() -> impl Strategy<Value = ScenarioSpec> {
    (
        topology(),
        workload(),
        schemes(),
        (engine(), representation()),
        (faults(), chaos()),
        proptest::collection::vec(1usize..=16, 0..=6),
        seeds(),
        network(),
    )
        .prop_map(
            |(
                topology,
                workload,
                schemes,
                (engine, representation),
                (faults, chaos),
                w2_values,
                seeds,
                network,
            )| {
                ScenarioSpec {
                    schema_version: SPEC_SCHEMA_VERSION,
                    // Exercise key escaping too: names carry quotes/unicode.
                    name: "prop \"scenario\" ☃".to_string(),
                    topology,
                    workload,
                    schemes,
                    engine,
                    representation,
                    faults,
                    chaos,
                    sweep: SweepSpec { w2_values },
                    seeds,
                    network,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// JSON round-trip: compact and pretty printing both reload to the
    /// exact same spec (no field drops, no numeric type drift).
    #[test]
    fn json_round_trip_is_lossless(spec in scenario()) {
        let compact = serde_json::to_string(&spec).expect("serializable");
        let back: ScenarioSpec = serde_json::from_str(&compact).expect("parseable");
        prop_assert_eq!(&back, &spec);

        let pretty = serde_json::to_string_pretty(&spec).expect("serializable");
        let back: ScenarioSpec = serde_json::from_str(&pretty).expect("parseable");
        prop_assert_eq!(&back, &spec);
    }

    /// TOML round-trip: the hand-rolled emitter/parser pair is lossless
    /// over the full randomized spec space (nested enums, mixed-type
    /// parameter arrays, floats vs integers, unicode strings).
    #[test]
    fn toml_round_trip_is_lossless(spec in scenario()) {
        let text = toml::to_toml_string(&spec).expect("serializable");
        let back: ScenarioSpec = toml::from_toml_str(&text).expect("parseable");
        prop_assert_eq!(&back, &spec);
    }

    /// Cross-format: JSON → spec → TOML → spec is still the identity, so
    /// the two wire formats can be mixed freely in a pipeline.
    #[test]
    fn json_and_toml_agree(spec in scenario()) {
        let json = serde_json::to_string(&spec).expect("serializable");
        let from_json: ScenarioSpec = serde_json::from_str(&json).expect("parseable");
        let toml_text = toml::to_toml_string(&from_json).expect("serializable");
        let from_toml: ScenarioSpec = toml::from_toml_str(&toml_text).expect("parseable");
        prop_assert_eq!(&from_toml, &spec);
    }
}
