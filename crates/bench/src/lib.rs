//! # xgft-bench — experiment binaries and Criterion benches
//!
//! The experiment surface is the unified `xgft` binary (the
//! `xgft-scenario` crate's CLI: `xgft run <spec>`, `xgft list`,
//! `xgft fig2_wrf --quick`, …). The historical per-figure binaries still
//! build, but every one is a one-line argv forwarder over the scenario
//! registry — no experiment logic lives in `src/bin/` anymore.
//!
//! This library re-exports the shared flag parser for backwards
//! compatibility; new code should depend on `xgft-scenario` directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// The shared experiment flag parser (now hosted by `xgft-scenario`).
pub mod cli {
    pub use xgft_scenario::args::*;
}

pub use xgft_scenario::args::{scale_bytes, workload_pattern, ExperimentArgs};
