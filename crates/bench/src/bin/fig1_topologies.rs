//! Regenerates the Fig. 1 overview: example XGFT instantiations and their
//! structural parameters.

use xgft_analysis::experiments::fig1;

fn main() {
    let result = fig1::run();
    println!("{}", result.render());
}
