//! Offline stand-in for the crates.io `serde` crate.
//!
//! The build container has no network access, so this shim provides the
//! subset of serde the workspace uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums, consumed by `serde_json::to_string_pretty` /
//! `from_str`. Instead of upstream serde's visitor architecture, both traits
//! go through a single JSON-like [`Value`] tree — dramatically simpler, and
//! observationally equivalent for the JSON round-trips this workspace
//! performs (the derive mirrors serde's external-tagging conventions).
//!
//! Swapping back to the registry crates is a one-line change in the
//! workspace `Cargo.toml`; no call site mentions this shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the interchange format between [`Serialize`],
/// [`Deserialize`] and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (always `< 0`; non-negatives normalise to `UInt`).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion order is preserved (field order of derived structs).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree (stand-in for `serde::Serialize`).
pub trait Serialize {
    /// Converts `self` to its [`Value`] representation.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree (stand-in for
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a required object field; used by derived `Deserialize` impls.
pub fn obj_field<'a>(value: &'a Value, name: &str) -> Result<&'a Value, Error> {
    let entries = value
        .as_object()
        .ok_or_else(|| Error::custom(format!("expected object with field `{name}`")))?;
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

/// Splits an externally-tagged enum value (`{"Variant": inner}`) into its
/// tag and payload; used by derived `Deserialize` impls.
pub fn enum_parts(value: &Value) -> Result<(&str, &Value), Error> {
    match value.as_object() {
        Some([(tag, inner)]) => Ok((tag.as_str(), inner)),
        _ => Err(Error::custom(
            "expected a single-key object for an enum variant",
        )),
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(Error::custom)
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(i).map_err(Error::custom)
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom("expected number"))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let items = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as JSON objects when every key is a string, and as an
/// array of `[key, value]` pairs otherwise (mirroring how serde_json treats
/// non-string map keys as an error, but keeping them representable).
fn map_to_value(pairs: impl Iterator<Item = (Value, Value)>) -> Value {
    let pairs: Vec<(Value, Value)> = pairs.collect();
    if pairs.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Value::Str(s) => (s, v),
                    _ => unreachable!("checked above"),
                })
                .collect(),
        )
    } else {
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

fn map_from_value<K: Deserialize, V: Deserialize>(value: &Value) -> Result<Vec<(K, V)>, Error> {
    match value {
        Value::Object(entries) => entries
            .iter()
            .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
            .collect(),
        Value::Array(items) => items
            .iter()
            .map(|pair| {
                let [k, v] = pair
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| Error::custom("expected [key, value] pair"))?
                else {
                    unreachable!("length checked above")
                };
                Ok((K::from_value(k)?, V::from_value(v)?))
            })
            .collect(),
        _ => Err(Error::custom("expected map (object or pair array)")),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter().map(|(k, v)| (k.to_value(), v.to_value())))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(value)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        // HashMap iteration order is unspecified; sort on the rendered key
        // so serialization is deterministic.
        pairs.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
        map_to_value(pairs.into_iter())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(value)?.into_iter().collect())
    }
}
