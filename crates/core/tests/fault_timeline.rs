//! Property tests of epoch-wise incremental patching over fault/repair
//! *timelines* — the contract the chaos lab stands on: at every point of a
//! random timeline of overlapping incidents (each a fault set that starts
//! at one epoch and is repaired some epochs later), rebuilding the working
//! table with `repatch` against the epoch's cumulative fault set must be
//! byte-identical to compiling from scratch against the same degraded
//! topology — for the flat [`CompiledRouteTable`] and for the
//! [`CompactRoutes`] overlay alike. The repair direction is exactly what
//! plain `patch` cannot do (faults only accumulate; misses never heal), so
//! these properties pin `repatch` as the epoch-boundary transition.

use proptest::prelude::*;
use xgft_core::{
    CompactRoutes, CompactScheme, CompiledRouteTable, DModK, RandomNcaDown, RandomNcaUp,
    RandomRouting, RoutingAlgorithm, SModK, UndoableTable,
};
use xgft_topo::{FaultSet, Xgft, XgftSpec};

/// Small two- and three-level specs with optional slimming (mirrors the
/// strategy of the degraded-patch property tests).
fn small_spec() -> impl Strategy<Value = XgftSpec> {
    prop_oneof![
        (2usize..=6, 1usize..=6)
            .prop_map(|(k, w2)| XgftSpec::new(vec![k, k], vec![1, w2.min(k)]).expect("valid")),
        (2usize..=4, 2usize..=4, 2usize..=3, 1usize..=3, 1usize..=3).prop_map(
            |(m1, m2, m3, w2, w3)| {
                XgftSpec::new(vec![m1, m2, m3], vec![1, w2, w3]).expect("valid")
            }
        ),
    ]
}

/// The closed form and the tabled algorithm it must reproduce exactly.
fn scheme(xgft: &Xgft, idx: usize, seed: u64) -> (CompactScheme, Box<dyn RoutingAlgorithm>) {
    match idx % 5 {
        0 => (CompactScheme::DModK, Box::new(DModK::new())),
        1 => (CompactScheme::SModK, Box::new(SModK::new())),
        2 => (
            CompactScheme::Random { seed },
            Box::new(RandomRouting::new(seed)),
        ),
        3 => (
            CompactScheme::random_nca_up(xgft, seed),
            Box::new(RandomNcaUp::new(xgft, seed)),
        ),
        _ => (
            CompactScheme::random_nca_down(xgft, seed),
            Box::new(RandomNcaDown::new(xgft, seed)),
        ),
    }
}

/// One incident of the timeline: a fault set drawn at `start`, repaired
/// (removed from the cumulative set) `duration` epochs later.
#[derive(Debug, Clone)]
struct Incident {
    start: usize,
    duration: usize,
    rate_percent: u32,
    seed: u64,
}

fn incidents(epochs: usize) -> impl Strategy<Value = Vec<Incident>> {
    prop::collection::vec(
        (0usize..epochs, 1usize..=3, 5u32..=40, 0u64..1000).prop_map(
            |(start, duration, rate_percent, seed)| Incident {
                start,
                duration,
                rate_percent,
                seed,
            },
        ),
        1..6,
    )
}

/// The cumulative fault set of `epoch`: the union of every incident active
/// at that instant. An incident started at `start` with `duration` d is
/// active during epochs `start .. start + d` (repair takes effect at the
/// epoch boundary).
fn cumulative(xgft: &Xgft, incidents: &[Incident], epoch: usize) -> FaultSet {
    let mut cum = FaultSet::none(xgft);
    for inc in incidents {
        if inc.start <= epoch && epoch < inc.start + inc.duration {
            cum.merge(&FaultSet::uniform_links(
                xgft,
                inc.rate_percent as f64 / 100.0,
                inc.seed,
            ));
        }
    }
    cum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At every epoch of a random fault/repair timeline both incremental
    /// forms — `CompiledRouteTable::repatch` from the pristine table and
    /// `CompactRoutes::repatch` of the overlay engine — are byte-identical
    /// to a from-scratch degraded compile of the epoch's cumulative fault
    /// set. The timeline includes shrinking transitions (repairs), which
    /// one-way `patch` chaining would get wrong by construction.
    #[test]
    fn epoch_wise_repatching_tracks_the_timeline_exactly(
        spec in small_spec(),
        scheme_idx in 0usize..5,
        seed in 0u64..1000,
        timeline in incidents(6),
    ) {
        let xgft = Xgft::new(spec).unwrap();
        let (closed_form, algo) = scheme(&xgft, scheme_idx, seed);
        let n = xgft.num_leaves();
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|s| (0..n).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d)
            .collect();

        let pristine = CompiledRouteTable::compile(&xgft, algo.as_ref(), pairs.iter().copied());
        let mut working = pristine.clone();
        let mut compact = CompactRoutes::for_pairs(&xgft, closed_form, pairs.iter().copied());
        let mut overlay = UndoableTable::new(pristine.clone());

        let epochs = timeline.iter().map(|i| i.start + i.duration).max().unwrap() + 1;
        let mut saw_shrink = false;
        let mut any_faults = false;
        let mut previous = 0usize;
        for epoch in 0..epochs {
            let faults = cumulative(&xgft, &timeline, epoch);
            saw_shrink |= faults.num_failed_channels() < previous;
            any_faults |= faults.num_failed_channels() > 0;
            previous = faults.num_failed_channels();

            let stats = working.repatch(&pristine, &xgft, &faults);
            let scratch = CompiledRouteTable::compile_degraded(
                &xgft,
                &faults,
                algo.as_ref(),
                pairs.iter().copied(),
            );
            prop_assert_eq!(
                &working, &scratch,
                "epoch {}: repatch and recompile diverged", epoch
            );
            prop_assert_eq!(
                pairs.len(),
                stats.untouched + stats.rerouted + stats.unroutable
            );

            let compact_stats = compact.repatch(&xgft, &faults);
            prop_assert_eq!(&compact.to_compiled(&xgft), &scratch,
                "epoch {}: compact overlay and recompile diverged", epoch);
            prop_assert_eq!(compact_stats.unroutable, stats.unroutable);

            // The undo-log overlay must resolve every pair exactly like the
            // clone-and-repatch working table, with identical patch stats —
            // the chaos lab swaps clone+repatch for revert+patch on the
            // strength of this property.
            let overlay_stats = overlay.patch(&xgft, &faults);
            prop_assert_eq!(overlay_stats, stats);
            for s in 0..n {
                for d in 0..n {
                    prop_assert_eq!(
                        overlay.path(s, d),
                        working.path(s, d),
                        "epoch {}: undo overlay and repatch diverged on ({}, {})",
                        epoch, s, d
                    );
                }
            }
            prop_assert_eq!(overlay.len(), working.len());

            // Every surviving path avoids the epoch's dead channels.
            for (_, path) in working.iter_paths() {
                prop_assert!(path.iter().all(|&c| !faults.is_failed(c as usize)));
            }
        }
        // The last epoch is beyond every incident: full repair must restore
        // the pristine table byte-for-byte.
        prop_assert!(cumulative(&xgft, &timeline, epochs - 1).is_empty());
        prop_assert_eq!(&working, &pristine, "full repair must restore pristine routes");
        // Whenever an incident actually failed a channel, its expiry must
        // have shrunk the cumulative set somewhere along the way (the final
        // epoch is beyond every incident), exercising the repair direction.
        prop_assert!(saw_shrink || !any_faults, "timelines with faults must exercise repair");
    }

    /// Deterministic spot check of the healing contract plain `patch`
    /// cannot express: cut a machine down to misses, then repair
    /// everything — `repatch` heals the misses, forward `patch` does not.
    #[test]
    fn repatch_heals_what_patch_must_not(
        k in 2usize..=5,
        scheme_idx in 0usize..5,
        seed in 0u64..100,
    ) {
        let xgft = Xgft::new(XgftSpec::slimmed_two_level(k, k).unwrap()).unwrap();
        let (closed_form, algo) = scheme(&xgft, scheme_idx, seed);
        let total = FaultSet::uniform_links(&xgft, 1.0, 1);
        let none = FaultSet::none(&xgft);

        let pristine = CompiledRouteTable::compile_all_pairs(&xgft, algo.as_ref());
        let mut working = pristine.clone();
        let cut = working.repatch(&pristine, &xgft, &total);
        prop_assert!(cut.unroutable > 0);

        // Forward patch with the empty set: misses stay misses.
        let mut chained = working.clone();
        chained.patch(&xgft, &none);
        prop_assert_eq!(chained.len(), working.len());
        prop_assert!(chained.len() < pristine.len());

        // Repatch with the empty set: byte-identical to pristine.
        working.repatch(&pristine, &xgft, &none);
        prop_assert_eq!(&working, &pristine);

        // Same healing contract for the compact overlay.
        let mut compact = CompactRoutes::all_pairs(&xgft, closed_form);
        compact.repatch(&xgft, &total);
        prop_assert!(compact.len() < pristine.len());
        compact.repatch(&xgft, &none);
        prop_assert_eq!(compact.len(), pristine.len());
        prop_assert_eq!(&compact.to_compiled(&xgft), &pristine);
    }
}
