//! The [`RoutingAlgorithm`] trait shared by every routing scheme.

use xgft_topo::{Route, Xgft};

/// A routing scheme: a deterministic function from a (source, destination)
/// pair to a minimal route (an up-port sequence reaching one of the pair's
/// NCAs).
///
/// *Oblivious* schemes compute the route from the pair alone (plus any
/// internal randomness fixed at construction time by a seed). *Pattern-aware*
/// schemes ([`crate::ColoredRouting`]) additionally look at the
/// communication pattern when they are constructed; they report
/// `is_pattern_aware() == true`.
///
/// Implementations must return a route whose length equals
/// `xgft.nca_level(s, d)` and whose ports are valid for the topology, so the
/// result always passes [`Xgft::validate_route`].
pub trait RoutingAlgorithm {
    /// Human-readable name used in reports and figures (e.g. `"d-mod-k"`).
    fn name(&self) -> String;

    /// Compute the route for the ordered pair `(s, d)`.
    ///
    /// # Panics
    /// Implementations may panic if `s` or `d` is not a leaf of `xgft`, or if
    /// the algorithm was constructed for a different topology.
    fn route(&self, xgft: &Xgft, s: usize, d: usize) -> Route;

    /// True if the scheme used knowledge of the communication pattern.
    fn is_pattern_aware(&self) -> bool {
        false
    }
}

/// Blanket implementation so `Box<dyn RoutingAlgorithm>` and references can
/// be used wherever an algorithm is expected.
impl<T: RoutingAlgorithm + ?Sized> RoutingAlgorithm for &T {
    fn name(&self) -> String {
        (**self).name()
    }
    fn route(&self, xgft: &Xgft, s: usize, d: usize) -> Route {
        (**self).route(xgft, s, d)
    }
    fn is_pattern_aware(&self) -> bool {
        (**self).is_pattern_aware()
    }
}

impl<T: RoutingAlgorithm + ?Sized> RoutingAlgorithm for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn route(&self, xgft: &Xgft, s: usize, d: usize) -> Route {
        (**self).route(xgft, s, d)
    }
    fn is_pattern_aware(&self) -> bool {
        (**self).is_pattern_aware()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modk::SModK;

    #[test]
    fn references_and_boxes_delegate() {
        let xgft = Xgft::k_ary_n_tree(4, 2);
        let algo = SModK::new();
        let by_ref: &dyn RoutingAlgorithm = &algo;
        let boxed: Box<dyn RoutingAlgorithm> = Box::new(SModK::new());
        assert_eq!(by_ref.name(), boxed.name());
        assert_eq!(by_ref.route(&xgft, 1, 9), boxed.route(&xgft, 1, 9));
        assert!(!boxed.is_pattern_aware());
    }
}
