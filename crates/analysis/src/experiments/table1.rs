//! Table I and Eq. (1): node labels, per-level node counts and link counts.

use serde::{Deserialize, Serialize};
use xgft_topo::{NodeLabel, XgftSpec};

/// One row of Table I: a level of the XGFT.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LevelRow {
    /// Level index (0 = processing nodes).
    pub level: usize,
    /// Number of nodes at the level.
    pub nodes: usize,
    /// Radix of each label digit position, most significant first
    /// (`w` positions are marked in [`Table1Result::render`]).
    pub digit_radices: Vec<usize>,
    /// Links going down from this level.
    pub links_down: usize,
    /// Links going up from this level.
    pub links_up: usize,
}

/// The Table I reproduction for one XGFT spec.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// The spec the table describes.
    pub spec: String,
    /// Height of the tree.
    pub height: usize,
    /// One row per level, bottom up.
    pub rows: Vec<LevelRow>,
    /// Total inner switches (Eq. 1).
    pub inner_switches: usize,
    /// Sum of per-level node counts for levels 1..h (must equal Eq. 1).
    pub inner_switches_by_sum: usize,
}

/// Build the Table I reproduction for a spec.
pub fn run(spec: &XgftSpec) -> Table1Result {
    let h = spec.height();
    let mut rows = Vec::with_capacity(h + 1);
    for level in 0..=h {
        let digit_radices = (1..=h)
            .rev()
            .map(|pos| NodeLabel::radix_at(spec, level, pos))
            .collect();
        rows.push(LevelRow {
            level,
            nodes: spec.nodes_at_level(level),
            digit_radices,
            links_down: spec.down_links_at_level(level),
            links_up: spec.up_links_at_level(level),
        });
    }
    Table1Result {
        spec: spec.to_string(),
        height: h,
        rows,
        inner_switches: spec.inner_switches(),
        inner_switches_by_sum: (1..=h).map(|l| spec.nodes_at_level(l)).sum(),
    }
}

impl Table1Result {
    /// Render the table as text (the `table1` binary's output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# Table I for {}\n", self.spec));
        out.push_str(&format!(
            "{:>6} {:>10} {:>24} {:>12} {:>10}\n",
            "level", "#nodes", "label radices", "links down", "links up"
        ));
        for row in &self.rows {
            let radices: Vec<String> = row
                .digit_radices
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let pos = self.height - i;
                    if pos <= row.level {
                        format!("w{r}")
                    } else {
                        format!("m{r}")
                    }
                })
                .collect();
            out.push_str(&format!(
                "{:>6} {:>10} {:>24} {:>12} {:>10}\n",
                row.level,
                row.nodes,
                format!("<{}>", radices.join(",")),
                row.links_down,
                row.links_up
            ));
        }
        out.push_str(&format!(
            "Eq.(1) inner switches I = {} (per-level sum {})\n",
            self.inner_switches, self.inner_switches_by_sum
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_table() {
        let spec = XgftSpec::slimmed_two_level(16, 10).unwrap();
        let result = run(&spec);
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.rows[0].nodes, 256);
        assert_eq!(result.rows[1].nodes, 16);
        assert_eq!(result.rows[2].nodes, 10);
        assert_eq!(result.inner_switches, 26);
        assert_eq!(result.inner_switches, result.inner_switches_by_sum);
        // Link consistency between adjacent levels.
        assert_eq!(result.rows[0].links_up, result.rows[1].links_down);
        assert_eq!(result.rows[1].links_up, result.rows[2].links_down);
        let text = result.render();
        assert!(text.contains("Table I"));
        assert!(text.contains("256"));
    }

    #[test]
    fn three_level_radices_flip_from_m_to_w() {
        let spec = XgftSpec::new(vec![4, 3, 2], vec![1, 2, 3]).unwrap();
        let result = run(&spec);
        // Leaf row: all m radices; root row: all w radices.
        assert_eq!(result.rows[0].digit_radices, vec![2, 3, 4]);
        assert_eq!(result.rows[3].digit_radices, vec![3, 2, 1]);
        // Middle rows mix.
        assert_eq!(result.rows[1].digit_radices, vec![2, 3, 1]);
        assert_eq!(result.rows[2].digit_radices, vec![2, 2, 1]);
    }
}
