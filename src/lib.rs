//! # XGFT Oblivious Routing
//!
//! A reproduction of *"Oblivious Routing Schemes in Extended Generalized Fat
//! Tree Networks"* (Rodríguez et al., IEEE CLUSTER 2009) as a Rust workspace.
//!
//! This umbrella crate re-exports the public API of every workspace crate so
//! that examples, integration tests and downstream users can depend on a
//! single package:
//!
//! * [`topo`] — the XGFT topology substrate (labels, NCAs, routes).
//! * [`patterns`] — communication patterns and workload generators.
//! * [`routing`] — the oblivious routing family (the paper's contribution).
//! * [`flow`] — the analytical channel-load model: exact expected loads,
//!   MCL, tree-cut bounds and congestion ratios from closed-form route
//!   distributions (no simulation, no seeds).
//! * [`netsim`] — the event-driven flit/segment-level network simulator.
//! * [`tracesim`] — the Dimemas-like trace replay engine and synthetic
//!   WRF-256 / CG.D-128 workloads.
//! * [`analysis`] — metrics, statistics and experiment drivers for every
//!   table and figure in the paper.
//! * [`scenario`] — the declarative `ScenarioSpec` layer and the unified
//!   `xgft` CLI: whole experiments (topology × schemes × workload × faults
//!   × engine × sweep × seeds) as serializable JSON/TOML data.
//!
//! See `README.md` for a quickstart, the crate dependency diagram and the
//! figure-reproduction workflow.

pub use xgft_analysis as analysis;
pub use xgft_core as routing;
pub use xgft_flow as flow;
pub use xgft_netsim as netsim;
pub use xgft_patterns as patterns;
pub use xgft_scenario as scenario;
pub use xgft_topo as topo;
pub use xgft_tracesim as tracesim;

/// Commonly used items for quick experimentation.
pub mod prelude {
    pub use xgft_analysis::slowdown::SlowdownReport;
    pub use xgft_analysis::{AlgorithmSpec, CampaignConfig, CampaignResult, SweepConfig};
    pub use xgft_core::{
        ColoredRouting, CompiledRouteTable, DModK, RandomNcaDown, RandomNcaUp, RandomRouting,
        RouteDistribution, RouteTable, RoutingAlgorithm, SModK,
    };
    pub use xgft_flow::{ExpectedLoads, FlowSweepConfig, TrafficMatrix, TrafficSpec};
    pub use xgft_netsim::{NetworkConfig, SwitchingMode};
    pub use xgft_patterns::{ConnectivityMatrix, Pattern};
    pub use xgft_scenario::{
        run_scenario, RunOptions, ScenarioResult, ScenarioSpec, SchemeSpec, WorkloadSpec,
    };
    pub use xgft_topo::{KAryNTree, NodeLabel, Route, Xgft, XgftSpec};
    pub use xgft_tracesim::{
        workloads::{cg_d_trace, wrf_trace},
        ReplayEngine, Trace,
    };
}
