//! Per-run telemetry: a metrics-delta window rendered as stage timings.
//!
//! `run_scenario` takes a [`MetricsSnapshot`](crate::MetricsSnapshot) before
//! and after a run, diffs them, and folds the result into a [`Telemetry`]
//! value attached to the scenario result *outside* the byte-pinned
//! deterministic payload. The `.ns`/`.calls` counter pairs that
//! [`span`](crate::span) guards accumulate become [`StageTiming`] entries;
//! every other counter, gauge and histogram rides along unchanged.

use crate::registry::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Wall-clock spent in one instrumented stage during the telemetry window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (the span name, e.g. `core.compile`).
    pub stage: String,
    /// Accumulated wall-clock nanoseconds across all calls.
    pub wall_ns: u64,
    /// Number of completed spans.
    pub calls: u64,
}

/// Everything observed about one run: total wall-clock plus the metrics
/// delta, with span counters folded into per-stage timings.
///
/// Timings are machine- and load-dependent by nature, which is exactly why
/// this lives outside the deterministic payload: two runs of the same spec
/// produce byte-identical payloads and *different* telemetry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Telemetry {
    /// End-to-end wall-clock of the run in nanoseconds.
    pub wall_ns: u64,
    /// Per-stage wall-clocks, sorted by stage name.
    pub stages: Vec<StageTiming>,
    /// Counters that advanced during the window (span pairs excluded).
    pub counters: Vec<CounterSample>,
    /// Gauge levels at the end of the window (process-lifetime for
    /// high-water gauges).
    pub gauges: Vec<GaugeSample>,
    /// Histograms that recorded samples during the window.
    pub histograms: Vec<HistogramSample>,
}

impl Telemetry {
    /// Fold a metrics window into telemetry. `delta` should come from
    /// [`MetricsSnapshot::delta_since`] over the run's boundaries.
    pub fn from_window(wall_ns: u64, delta: MetricsSnapshot) -> Self {
        let mut stages = Vec::new();
        let mut counters = Vec::new();
        for c in &delta.counters {
            if let Some(stage) = c.name.strip_suffix(".ns") {
                stages.push(StageTiming {
                    stage: stage.to_string(),
                    wall_ns: c.value,
                    calls: delta.counter(&format!("{stage}.calls")).unwrap_or(0),
                });
            } else if let Some(stage) = c.name.strip_suffix(".calls") {
                // A stage whose accumulated time rounded to 0 ns still
                // happened; keep it visible rather than dropping it.
                if delta.counter(&format!("{stage}.ns")).is_none() {
                    stages.push(StageTiming {
                        stage: stage.to_string(),
                        wall_ns: 0,
                        calls: c.value,
                    });
                }
            } else {
                counters.push(c.clone());
            }
        }
        Telemetry {
            wall_ns,
            stages,
            counters,
            gauges: delta.gauges,
            histograms: delta.histograms,
        }
    }

    /// The timing for `stage`, if it ran during the window.
    pub fn stage(&self, name: &str) -> Option<&StageTiming> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// The counter delta for `name`, if it advanced during the window.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// A human-readable multi-line summary (for stderr alongside the JSON
    /// result on stdout).
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "telemetry: total {}", human_ns(self.wall_ns));
        for s in &self.stages {
            let _ = writeln!(
                out,
                "  stage {:<24} {:>12}  x{}",
                s.stage,
                human_ns(s.wall_ns),
                s.calls
            );
        }
        for c in &self.counters {
            let _ = writeln!(out, "  count {:<24} {:>12}", c.name, c.value);
        }
        for g in &self.gauges {
            let _ = writeln!(out, "  gauge {:<24} {:>12}", g.name, g.value);
        }
        for h in &self.histograms {
            let _ = writeln!(
                out,
                "  hist  {:<24} n={} mean={:.0} p50>={} p99>={} max={}",
                h.name,
                h.count,
                h.mean(),
                h.quantile_floor(0.50),
                h.quantile_floor(0.99),
                h.max
            );
        }
        out
    }
}

/// Format nanoseconds with a readable unit.
fn human_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_folds_span_pairs_into_stages() {
        let reg = crate::MetricsRegistry::new();
        reg.counter("core.compile.ns").add(5_000);
        reg.counter("core.compile.calls").add(2);
        reg.counter("core.compile.routes").add(240);
        reg.gauge("core.route_state_bytes").set_max(4096);
        reg.histogram("netsim.delivery_latency_ps").record(1500);
        let t = Telemetry::from_window(
            9_999,
            reg.snapshot().delta_since(&MetricsSnapshot::default()),
        );
        assert_eq!(t.wall_ns, 9_999);
        let stage = t.stage("core.compile").unwrap();
        assert_eq!(stage.wall_ns, 5_000);
        assert_eq!(stage.calls, 2);
        assert_eq!(t.counter("core.compile.routes"), Some(240));
        assert!(t.counter("core.compile.ns").is_none(), "folded into stage");
        assert!(
            t.counter("core.compile.calls").is_none(),
            "folded into stage"
        );
        assert_eq!(t.gauges.len(), 1);
        assert_eq!(t.histograms.len(), 1);
        let summary = t.render_summary();
        assert!(summary.contains("core.compile"), "{summary}");
        assert!(summary.contains("9.999us"), "{summary}");
    }

    #[test]
    fn zero_ns_stage_survives_via_calls_counter() {
        let reg = crate::MetricsRegistry::new();
        reg.counter("fast.calls").add(3);
        let t = Telemetry::from_window(1, reg.snapshot().delta_since(&MetricsSnapshot::default()));
        let stage = t.stage("fast").unwrap();
        assert_eq!(stage.calls, 3);
        assert_eq!(stage.wall_ns, 0);
    }

    #[test]
    fn telemetry_roundtrips_through_json() {
        let t = Telemetry {
            wall_ns: 123,
            stages: vec![StageTiming {
                stage: "s".to_string(),
                wall_ns: 7,
                calls: 1,
            }],
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
        };
        let json = serde_json::to_string(&t).unwrap();
        let parsed: Telemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn human_ns_units() {
        assert_eq!(human_ns(12), "12ns");
        assert_eq!(human_ns(1_500), "1.500us");
        assert_eq!(human_ns(2_000_000), "2.000ms");
        assert_eq!(human_ns(3_000_000_000), "3.000s");
    }
}
