//! The trace model: per-rank event programs.
//!
//! A trace records, for every MPI rank, the sequence of events it executes.
//! This mirrors what Dimemas extracts from a post-mortem application trace:
//! the MPI calls and the causal relationships between messages; detailed
//! computation is abstracted into `Compute` durations.

use serde::{Deserialize, Serialize};

/// One event of a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankEvent {
    /// Local computation for the given duration (picoseconds).
    Compute {
        /// Duration of the computation in picoseconds.
        duration_ps: u64,
    },
    /// Post a message to `dst`. Sends are non-blocking (eager/Isend-like):
    /// the rank continues immediately after posting.
    Send {
        /// Destination rank.
        dst: usize,
        /// Payload size in bytes.
        bytes: u64,
        /// Match tag.
        tag: u32,
    },
    /// Block until a message from `src` with `tag` has been fully delivered.
    Recv {
        /// Source rank.
        src: usize,
        /// Match tag.
        tag: u32,
    },
    /// Block until every rank has reached this barrier.
    Barrier,
}

/// A complete trace: one event program per rank.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    programs: Vec<Vec<RankEvent>>,
}

impl Trace {
    /// Build a trace from per-rank programs.
    ///
    /// # Panics
    /// Panics if `programs` is empty.
    pub fn new(name: impl Into<String>, programs: Vec<Vec<RankEvent>>) -> Self {
        assert!(!programs.is_empty(), "a trace needs at least one rank");
        Trace {
            name: name.into(),
            programs,
        }
    }

    /// The trace's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.programs.len()
    }

    /// The event program of one rank.
    pub fn program(&self, rank: usize) -> &[RankEvent] {
        &self.programs[rank]
    }

    /// All programs.
    pub fn programs(&self) -> &[Vec<RankEvent>] {
        &self.programs
    }

    /// Total number of Send events in the trace.
    pub fn num_sends(&self) -> usize {
        self.programs
            .iter()
            .flat_map(|p| p.iter())
            .filter(|e| matches!(e, RankEvent::Send { .. }))
            .count()
    }

    /// Total bytes posted by Send events.
    pub fn total_bytes(&self) -> u64 {
        self.programs
            .iter()
            .flat_map(|p| p.iter())
            .filter_map(|e| match e {
                RankEvent::Send { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// The distinct (source, destination) pairs this trace communicates over
    /// (useful for building route tables covering exactly the traffic).
    pub fn communication_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = self
            .programs
            .iter()
            .enumerate()
            .flat_map(|(rank, prog)| {
                prog.iter().filter_map(move |e| match e {
                    RankEvent::Send { dst, .. } => Some((rank, *dst)),
                    _ => None,
                })
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Basic sanity checks: every Send/Recv names a rank inside the trace
    /// and every Recv has a matching Send (same (src, dst, tag) multiset).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_ranks();
        let mut sends: std::collections::HashMap<(usize, usize, u32), isize> =
            std::collections::HashMap::new();
        for (rank, prog) in self.programs.iter().enumerate() {
            for e in prog {
                match e {
                    RankEvent::Send { dst, bytes, tag } => {
                        if *dst >= n {
                            return Err(format!("rank {rank} sends to out-of-range rank {dst}"));
                        }
                        if *bytes == 0 {
                            return Err(format!("rank {rank} sends an empty message"));
                        }
                        *sends.entry((rank, *dst, *tag)).or_default() += 1;
                    }
                    RankEvent::Recv { src, tag } => {
                        if *src >= n {
                            return Err(format!(
                                "rank {rank} receives from out-of-range rank {src}"
                            ));
                        }
                        *sends.entry((*src, rank, *tag)).or_default() -= 1;
                    }
                    RankEvent::Compute { .. } | RankEvent::Barrier => {}
                }
            }
        }
        for (&(src, dst, tag), &balance) in &sends {
            if balance < 0 {
                return Err(format!(
                    "more receives than sends for ({src} -> {dst}, tag {tag})"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trace() -> Trace {
        Trace::new(
            "toy",
            vec![
                vec![
                    RankEvent::Compute { duration_ps: 100 },
                    RankEvent::Send {
                        dst: 1,
                        bytes: 1024,
                        tag: 0,
                    },
                    RankEvent::Recv { src: 1, tag: 0 },
                ],
                vec![
                    RankEvent::Send {
                        dst: 0,
                        bytes: 2048,
                        tag: 0,
                    },
                    RankEvent::Recv { src: 0, tag: 0 },
                ],
            ],
        )
    }

    #[test]
    fn accessors_and_counts() {
        let t = toy_trace();
        assert_eq!(t.num_ranks(), 2);
        assert_eq!(t.num_sends(), 2);
        assert_eq!(t.total_bytes(), 3072);
        assert_eq!(t.name(), "toy");
        assert_eq!(t.program(0).len(), 3);
        assert_eq!(t.communication_pairs(), vec![(0, 1), (1, 0)]);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validation_catches_unmatched_recv() {
        let t = Trace::new(
            "bad",
            vec![vec![RankEvent::Recv { src: 1, tag: 7 }], vec![]],
        );
        assert!(t.validate().is_err());
    }

    #[test]
    fn validation_catches_out_of_range_and_empty() {
        let t = Trace::new(
            "bad",
            vec![vec![RankEvent::Send {
                dst: 5,
                bytes: 1,
                tag: 0,
            }]],
        );
        assert!(t.validate().is_err());
        let t = Trace::new(
            "bad2",
            vec![
                vec![RankEvent::Send {
                    dst: 1,
                    bytes: 0,
                    tag: 0,
                }],
                vec![],
            ],
        );
        assert!(t.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_trace_rejected() {
        let _ = Trace::new("empty", vec![]);
    }
}
