//! Property-based tests of patterns, permutations and decomposition.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xgft_patterns::{decompose, generators, ConnectivityMatrix, Permutation};

fn arbitrary_matrix() -> impl Strategy<Value = ConnectivityMatrix> {
    (2usize..=24)
        .prop_flat_map(|n| {
            let flows = prop::collection::vec((0..n, 0..n, 1u64..=4096), 0..60);
            (Just(n), flows)
        })
        .prop_map(|(n, flows)| {
            let mut m = ConnectivityMatrix::new(n);
            for (s, d, b) in flows {
                m.add_flow(s, d, b);
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The inverse of the inverse is the original pattern, and inversion
    /// preserves totals and symmetry.
    #[test]
    fn inversion_is_an_involution(m in arbitrary_matrix()) {
        let inv = m.inverse();
        prop_assert_eq!(inv.inverse(), m.clone());
        prop_assert_eq!(inv.total_bytes(), m.total_bytes());
        prop_assert_eq!(inv.num_flows(), m.num_flows());
        prop_assert_eq!(m.is_symmetric(), inv.is_symmetric());
        // Union with the inverse is always symmetric.
        prop_assert!(m.union(&inv).is_symmetric());
    }

    /// Decomposition into permutations is lossless, every round is a partial
    /// permutation, and the number of rounds is at least the endpoint
    /// contention of the pattern.
    #[test]
    fn decomposition_properties(m in arbitrary_matrix()) {
        let rounds = decompose::decompose_into_permutations(&m);
        // Lossless over network flows.
        let rebuilt = decompose::recompose(m.num_nodes(), &rounds);
        let mut expected = ConnectivityMatrix::new(m.num_nodes());
        for f in m.network_flows() {
            expected.add_flow(f.src, f.dst, f.bytes);
        }
        prop_assert_eq!(rebuilt, expected);
        // Rounds are partial permutations.
        for round in &rounds {
            let mut srcs = std::collections::HashSet::new();
            let mut dsts = std::collections::HashSet::new();
            for f in round {
                prop_assert!(srcs.insert(f.src));
                prop_assert!(dsts.insert(f.dst));
            }
        }
        prop_assert!(rounds.len() >= m.endpoint_contention());
    }

    /// Random permutations are bijections; composing with the inverse gives
    /// the identity; converting to a matrix yields a permutation pattern
    /// with no endpoint contention.
    #[test]
    fn permutation_algebra(n in 2usize..200, seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = Permutation::random(n, &mut rng);
        let inv = p.inverse();
        prop_assert!(p.compose(&inv).is_identity());
        prop_assert!(inv.compose(&p).is_identity());
        let m = p.to_matrix(100);
        prop_assert!(m.is_permutation());
        prop_assert!(m.endpoint_contention() <= 1);
    }

    /// Every named generator emits flows within range, with positive sizes,
    /// and the permutation-shaped ones really are permutations.
    #[test]
    fn generators_are_well_formed(
        bytes in 1u64..=1_000_000,
        log_n in 5u32..=9,
        offset in 1usize..100,
        seed in 0u64..1000,
    ) {
        let n = 1usize << log_n;
        let mut rng = StdRng::seed_from_u64(seed);
        let patterns = vec![
            generators::wrf_mesh_exchange(n / 16, 16, bytes),
            generators::cg_d(n, bytes),
            generators::shift(n, offset % n, bytes),
            generators::bit_reversal(n, bytes),
            generators::bit_complement(n, bytes),
            generators::random_permutation(n, bytes, &mut rng),
            generators::ring_exchange(n, bytes),
        ];
        for p in &patterns {
            prop_assert_eq!(p.num_nodes(), n);
            for phase in p.phases() {
                for f in phase.flows() {
                    prop_assert!(f.src < n && f.dst < n);
                    prop_assert!(f.bytes > 0);
                }
            }
        }
        for p in &[
            generators::shift(n, offset % n, bytes),
            generators::bit_reversal(n, bytes),
            generators::bit_complement(n, bytes),
        ] {
            prop_assert!(p.phases()[0].is_permutation());
        }
        // CG's transpose phase is involutive for every power-of-two size.
        for s in 0..n {
            let d = generators::cg_transpose_partner(s, n);
            prop_assert_eq!(generators::cg_transpose_partner(d, n), s);
        }
    }

    /// A pattern's combined matrix accumulates exactly the bytes of its
    /// phases.
    #[test]
    fn combined_preserves_bytes(m1 in arbitrary_matrix()) {
        let n = m1.num_nodes();
        let mut m2 = ConnectivityMatrix::new(n);
        m2.add_flow(0, n - 1, 7);
        let pattern = xgft_patterns::Pattern::new("two-phase", vec![m1.clone(), m2.clone()]);
        prop_assert_eq!(pattern.total_bytes(), m1.total_bytes() + m2.total_bytes());
        prop_assert_eq!(
            pattern.combined().total_bytes(),
            m1.total_bytes() + m2.total_bytes()
        );
    }
}
