//! Criterion benches: the topology substrate (label arithmetic, NCA level
//! computation, route expansion).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xgft_topo::{NodeLabel, Route, Xgft, XgftSpec};

fn nca_level(c: &mut Criterion) {
    let xgft = Xgft::new(XgftSpec::slimmed_two_level(16, 16).unwrap()).unwrap();
    c.bench_function("nca_level_all_pairs_256", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for s in 0..256usize {
                for d in 0..256usize {
                    acc += xgft.nca_level(black_box(s), black_box(d));
                }
            }
            black_box(acc)
        })
    });
}

fn route_expansion(c: &mut Criterion) {
    let xgft = Xgft::new(XgftSpec::k_ary_n_tree(16, 2)).unwrap();
    let route = Route::new(vec![0, 7]);
    c.bench_function("route_path_expansion", |b| {
        b.iter(|| {
            black_box(
                xgft.route_path(black_box(3), black_box(250), &route)
                    .unwrap(),
            )
        })
    });
    c.bench_function("route_channels_dense", |b| {
        b.iter(|| {
            black_box(
                xgft.route_channels(black_box(3), black_box(250), &route)
                    .unwrap(),
            )
        })
    });
}

fn label_round_trip(c: &mut Criterion) {
    let spec = XgftSpec::new(vec![8, 8, 8], vec![1, 4, 4]).unwrap();
    c.bench_function("label_round_trip_512_leaves", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for leaf in 0..spec.num_leaves() {
                let label = NodeLabel::from_index(&spec, 0, leaf).unwrap();
                acc += label.to_index(&spec);
            }
            black_box(acc)
        })
    });
}

fn topology_construction(c: &mut Criterion) {
    c.bench_function("xgft_construction_4096_leaves", |b| {
        b.iter(|| {
            let spec = XgftSpec::k_ary_n_tree(16, 3);
            black_box(Xgft::new(spec).unwrap().num_leaves())
        })
    });
}

criterion_group!(
    benches,
    nca_level,
    route_expansion,
    label_round_trip,
    topology_construction
);
criterion_main!(benches);
