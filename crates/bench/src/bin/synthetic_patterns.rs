//! Extension experiment: network contention of every oblivious scheme on the
//! classic synthetic permutations (shift, transpose, bit-reversal,
//! bit-complement, random) over full and slimmed 16-ary 2-trees.

use xgft_analysis::experiments::synthetic;
use xgft_bench::ExperimentArgs;

fn main() {
    let args = ExperimentArgs::parse();
    let seeds = args.seed_list();
    for w2 in [16usize, 10, 4] {
        let result = synthetic::run(16, w2, &seeds);
        println!("{}", result.render());
        if args.json {
            println!(
                "{}",
                serde_json::to_string_pretty(&result).expect("serialisable")
            );
        }
    }
}
