//! Pattern-aware NCA assignment ("Colored" baseline).
//!
//! The paper compares its oblivious schemes against the authors' earlier
//! pattern-aware routing (ICS'09, called *Colored*), which serves as the
//! best-achievable baseline for a network of the same cost. The exact
//! Colored algorithm lives in that other paper; here a greedy constructive
//! assignment followed by iterative refinement plays the same role:
//!
//! 1. flows are processed from the highest NCA level downwards (the flows
//!    with the fewest alternatives relative to their path length first);
//! 2. each flow is assigned the NCA that minimises the *effective* maximum
//!    load along its path, where — as in the paper's contention metric —
//!    flows sharing the source do not add load on shared up channels and
//!    flows sharing the destination do not add load on shared down channels;
//! 3. a configurable number of refinement passes re-seats every flow given
//!    the placement of all others.
//!
//! The result is a pattern-aware upper bound: for the full 16-ary 2-tree it
//! finds non-conflicting assignments for permutations (the rearrangeable
//! case), and for slimmed trees it spreads the unavoidable conflicts evenly,
//! which is exactly the role the Colored curve plays in Figs. 2 and 5.

use crate::algorithm::RoutingAlgorithm;
use crate::modk::mod_route;
use std::collections::HashMap;
use xgft_patterns::ConnectivityMatrix;
use xgft_topo::{Direction, Route, Xgft};

/// Per-channel multiset of "relevant endpoints" (sources on up channels,
/// destinations on down channels), supporting add/remove so flows can be
/// re-seated during refinement.
#[derive(Debug, Clone)]
struct LoadTracker {
    /// For every dense channel index: endpoint -> number of flows with that
    /// endpoint currently crossing the channel.
    per_channel: Vec<HashMap<usize, usize>>,
}

impl LoadTracker {
    fn new(num_channels: usize) -> Self {
        LoadTracker {
            per_channel: vec![HashMap::new(); num_channels],
        }
    }

    fn effective_load(&self, channel: usize) -> usize {
        self.per_channel[channel].len()
    }

    /// The effective load the channel would have after adding a flow with
    /// the given endpoint.
    fn load_if_added(&self, channel: usize, endpoint: usize) -> usize {
        let map = &self.per_channel[channel];
        map.len() + usize::from(!map.contains_key(&endpoint))
    }

    fn add(&mut self, channel: usize, endpoint: usize) {
        *self.per_channel[channel].entry(endpoint).or_insert(0) += 1;
    }

    fn remove(&mut self, channel: usize, endpoint: usize) {
        if let Some(count) = self.per_channel[channel].get_mut(&endpoint) {
            *count -= 1;
            if *count == 0 {
                self.per_channel[channel].remove(&endpoint);
            }
        }
    }
}

/// A pattern-aware routing: routes are chosen with full knowledge of the
/// communication pattern when the scheme is constructed.
#[derive(Debug, Clone)]
pub struct ColoredRouting {
    routes: HashMap<(usize, usize), Route>,
    refinement_passes: usize,
}

impl ColoredRouting {
    /// Assign routes for every flow of `pattern` on `xgft` using the default
    /// number of refinement passes.
    pub fn new(xgft: &Xgft, pattern: &ConnectivityMatrix) -> Self {
        Self::with_passes(xgft, pattern, 2)
    }

    /// Assign routes with an explicit number of refinement passes.
    pub fn with_passes(xgft: &Xgft, pattern: &ConnectivityMatrix, passes: usize) -> Self {
        let mut flows: Vec<(usize, usize)> =
            pattern.network_flows().map(|f| (f.src, f.dst)).collect();
        // Highest NCA level first, then deterministic order.
        flows.sort_by_key(|&(s, d)| (std::cmp::Reverse(xgft.nca_level(s, d)), s, d));

        let channels = xgft.channels();
        let mut tracker = LoadTracker::new(channels.len());
        let mut routes: HashMap<(usize, usize), Route> = HashMap::new();

        // Greedy construction.
        for &(s, d) in &flows {
            let route = Self::best_route(xgft, &tracker, s, d);
            Self::apply(xgft, &mut tracker, s, d, &route, true);
            routes.insert((s, d), route);
        }

        // Refinement: re-seat every flow given the rest.
        for _ in 0..passes {
            let mut changed = false;
            for &(s, d) in &flows {
                let current = routes[&(s, d)].clone();
                Self::apply(xgft, &mut tracker, s, d, &current, false);
                let best = Self::best_route(xgft, &tracker, s, d);
                if best != current {
                    changed = true;
                }
                Self::apply(xgft, &mut tracker, s, d, &best, true);
                routes.insert((s, d), best);
            }
            if !changed {
                break;
            }
        }

        ColoredRouting {
            routes,
            refinement_passes: passes,
        }
    }

    /// The number of refinement passes requested at construction.
    pub fn refinement_passes(&self) -> usize {
        self.refinement_passes
    }

    /// Number of flows the scheme has routes for.
    pub fn num_routes(&self) -> usize {
        self.routes.len()
    }

    fn apply(xgft: &Xgft, tracker: &mut LoadTracker, s: usize, d: usize, route: &Route, add: bool) {
        let channels = xgft.channels();
        let path = xgft.route_path(s, d, route).expect("valid route");
        for hop in path {
            let idx = channels.index(&hop.channel);
            let endpoint = match hop.channel.dir {
                Direction::Up => s,
                Direction::Down => d,
            };
            if add {
                tracker.add(idx, endpoint);
            } else {
                tracker.remove(idx, endpoint);
            }
        }
    }

    /// Evaluate every candidate NCA of the pair and return the route with
    /// the lexicographically smallest (max load, sum of loads, index) cost.
    fn best_route(xgft: &Xgft, tracker: &LoadTracker, s: usize, d: usize) -> Route {
        let channels = xgft.channels();
        let ncas = xgft.ncas(s, d).expect("valid pair");
        let mut best: Option<(usize, usize, usize, Route)> = None;
        for i in 0..ncas.len() {
            let route = Route::new(ncas.route_digits(i).expect("in range"));
            let path = xgft.route_path(s, d, &route).expect("valid route");
            let mut max_load = 0usize;
            let mut sum_load = 0usize;
            for hop in &path {
                let idx = channels.index(&hop.channel);
                let endpoint = match hop.channel.dir {
                    Direction::Up => s,
                    Direction::Down => d,
                };
                let load = tracker.load_if_added(idx, endpoint);
                max_load = max_load.max(load);
                sum_load += load;
            }
            let candidate = (max_load, sum_load, i, route);
            let better = match &best {
                None => true,
                Some((bm, bs, bi, _)) => (candidate.0, candidate.1, candidate.2) < (*bm, *bs, *bi),
            };
            if better {
                best = Some(candidate);
            }
        }
        best.expect("at least one NCA exists for distinct leaves").3
    }

    /// The maximum effective load the stored assignment induces (useful for
    /// reporting the quality of the pattern-aware bound).
    pub fn max_effective_load(&self, xgft: &Xgft) -> usize {
        let channels = xgft.channels();
        let mut tracker = LoadTracker::new(channels.len());
        for (&(s, d), route) in &self.routes {
            Self::apply(xgft, &mut tracker, s, d, route, true);
        }
        (0..channels.len())
            .map(|c| tracker.effective_load(c))
            .max()
            .unwrap_or(0)
    }
}

impl RoutingAlgorithm for ColoredRouting {
    fn name(&self) -> String {
        "colored".to_string()
    }

    fn route(&self, xgft: &Xgft, s: usize, d: usize) -> Route {
        match self.routes.get(&(s, d)) {
            Some(route) => route.clone(),
            // Flows outside the pattern fall back to D-mod-k.
            None => mod_route(xgft, d, xgft.nca_level(s, d)),
        }
    }

    fn is_pattern_aware(&self) -> bool {
        true
    }
}

/// Deterministic once constructed: the default point-mass route
/// distribution is exact.
impl crate::route_dist::RouteDistribution for ColoredRouting {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contention::ContentionReport;
    use crate::modk::DModK;
    use crate::table::RouteTable;
    use xgft_patterns::generators;
    use xgft_topo::XgftSpec;

    fn tree(w2: usize) -> Xgft {
        Xgft::new(XgftSpec::slimmed_two_level(16, w2).unwrap()).unwrap()
    }

    #[test]
    fn routes_every_pattern_flow_and_is_valid() {
        let xgft = tree(8);
        let pattern = generators::wrf_256(1024).combined();
        let colored = ColoredRouting::new(&xgft, &pattern);
        assert_eq!(colored.num_routes(), pattern.network_flows().count());
        assert!(colored.is_pattern_aware());
        let table = RouteTable::build(
            &xgft,
            &colored,
            pattern.network_flows().map(|f| (f.src, f.dst)),
        );
        assert!(table.validate(&xgft).is_ok());
    }

    #[test]
    fn resolves_cg_permutation_without_conflicts_on_full_tree() {
        // The full 16-ary 2-tree is rearrangeable: a pattern-aware scheme
        // must route the CG fifth-phase permutation with contention 1,
        // whereas D-mod-k suffers the Eq. (2) pathology.
        let xgft = tree(16);
        let cg = generators::cg_d_128();
        let fifth = &cg.phases()[4];
        let colored = ColoredRouting::new(&xgft, fifth);
        let flows: Vec<(usize, usize)> = fifth.network_flows().map(|f| (f.src, f.dst)).collect();
        let colored_table = RouteTable::build(&xgft, &colored, flows.iter().copied());
        let colored_report =
            ContentionReport::compute(&xgft, &colored_table, flows.iter().copied());
        assert_eq!(colored_report.network_contention, 1);

        let dmodk_table = RouteTable::build(&xgft, &DModK::new(), flows.iter().copied());
        let dmodk_report = ContentionReport::compute(&xgft, &dmodk_table, flows.iter().copied());
        assert!(dmodk_report.network_contention >= 7);
    }

    #[test]
    fn slimmed_tree_contention_matches_capacity_lower_bound() {
        // With w2 middle switches, a cross-switch permutation of 16 flows per
        // switch cannot do better than ceil(16 / w2) flows per up channel.
        for w2 in [8usize, 4, 2] {
            let xgft = tree(w2);
            let shift = generators::shift(256, 16, 1);
            let flows: Vec<(usize, usize)> = shift.phases()[0]
                .network_flows()
                .map(|f| (f.src, f.dst))
                .collect();
            let colored = ColoredRouting::new(&xgft, &shift.phases()[0]);
            let table = RouteTable::build(&xgft, &colored, flows.iter().copied());
            let report = ContentionReport::compute(&xgft, &table, flows.iter().copied());
            let bound = 16usize.div_ceil(w2);
            assert!(
                report.network_contention >= bound,
                "w2={w2}: contention {} below the capacity bound {bound}",
                report.network_contention
            );
            assert!(
                report.network_contention <= bound + 1,
                "w2={w2}: colored should be near the bound, got {}",
                report.network_contention
            );
        }
    }

    #[test]
    fn unknown_flows_fall_back_to_d_mod_k() {
        let xgft = tree(16);
        let mut pattern = xgft_patterns::ConnectivityMatrix::new(256);
        pattern.add_flow(0, 17, 100);
        let colored = ColoredRouting::new(&xgft, &pattern);
        let fallback = colored.route(&xgft, 5, 200);
        assert_eq!(fallback, DModK::new().route(&xgft, 5, 200));
        assert!(xgft.validate_route(5, 200, &fallback).is_ok());
    }

    #[test]
    fn refinement_never_hurts_the_objective() {
        let xgft = tree(4);
        let pattern = generators::cg_d_128().combined();
        let greedy = ColoredRouting::with_passes(&xgft, &pattern, 0);
        let refined = ColoredRouting::with_passes(&xgft, &pattern, 3);
        assert!(refined.max_effective_load(&xgft) <= greedy.max_effective_load(&xgft));
        assert_eq!(refined.refinement_passes(), 3);
    }
}
