//! Tree-cut lower bounds on the optimal congestion, and the oblivious
//! congestion-ratio estimator.
//!
//! In an XGFT every set of leaves sharing their label digits above position
//! `l` (an "upper-digit subtree") is connected to the rest of the machine
//! exclusively through the up/down channels of its `Π_{j≤l} w_j` level-`l`
//! towers — `Π_{j≤l+1} w_j` channels per direction. Any routing (oblivious,
//! adaptive, or the optimum) must push every unit of demand leaving the
//! subtree through those up channels at least once, so
//!
//! ```text
//!     OPT ≥ max_{l, subtree}  demand crossing the subtree boundary
//!                             ─────────────────────────────────────
//!                                    Π_{j≤l+1} w_j
//! ```
//!
//! (and symmetrically for entering demand on the down channels). This is the
//! classic sparsest-cut-style certificate specialised to the tree's
//! hierarchical cut structure, in the spirit of the congestion benchmarks
//! used by the compact/hop-constrained oblivious-routing literature.
//!
//! Dividing a scheme's maximum expected channel load by the bound gives an
//! *upper estimate of the scheme's congestion-competitive ratio* on that
//! traffic: `ratio = MCL(scheme) / LB ≥ MCL(scheme) / MCL(OPT)`. A ratio of
//! 1 certifies the scheme as congestion-optimal for the instance.

use crate::loads::ExpectedLoads;
use crate::traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};
use xgft_core::RouteDistribution;
use xgft_topo::Xgft;

/// The tree-cut lower bound on the maximum channel load achievable by *any*
/// routing of a traffic matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutBound {
    /// The bound itself (same units as the traffic weights).
    pub bound: f64,
    /// The cable level of the binding cut (0 = leaf injection/ejection).
    pub critical_level: usize,
    /// The tightest bound obtained at each cable level.
    pub per_level: Vec<f64>,
}

/// Compute the tree-cut lower bound for `traffic` on `xgft`.
pub fn tree_cut_lower_bound(xgft: &Xgft, traffic: &TrafficMatrix) -> CutBound {
    assert_eq!(
        traffic.num_leaves(),
        xgft.num_leaves(),
        "traffic matrix and topology disagree on the number of leaves"
    );
    let spec = xgft.spec();
    let h = spec.height();

    // Channels per direction on the boundary of a level-l subtree.
    let capacity = |l: usize| spec.ncas_at_level(l + 1) as f64;

    let per_level: Vec<f64> = if let Some(weight) = traffic.uniform_weight() {
        // Closed form: every level-l subtree has Π_{j≤l} m_j leaves, each
        // with A(l) partners outside the subtree (see the loads module).
        let mut group = 1.0f64;
        (0..h)
            .map(|l| {
                let mut above = 0.0f64;
                let mut below = 1.0f64;
                for level in 1..=h {
                    if level > l {
                        above += ((spec.m(level) - 1) as f64) * below;
                    }
                    below *= spec.m(level) as f64;
                }
                let demand = weight * group * above;
                group *= spec.m(l + 1) as f64;
                demand / capacity(l)
            })
            .collect()
    } else {
        // Per-subtree demand accounting: a flow with NCA level L crosses
        // the boundary of its source's (and destination's) level-l subtree
        // for every l < L.
        let mut group_size: Vec<usize> = Vec::with_capacity(h);
        let mut size = 1usize;
        for l in 0..h {
            group_size.push(size);
            size *= spec.m(l + 1);
        }
        let mut out: Vec<Vec<f64>> = (0..h)
            .map(|l| vec![0.0; xgft.num_leaves() / group_size[l]])
            .collect();
        let mut into = out.clone();
        traffic.for_each_flow(|s, d, w| {
            let nca = xgft.nca_level(s, d);
            for l in 0..nca {
                out[l][s / group_size[l]] += w;
                into[l][d / group_size[l]] += w;
            }
        });
        (0..h)
            .map(|l| {
                let worst = out[l]
                    .iter()
                    .chain(&into[l])
                    .copied()
                    .fold(0.0f64, f64::max);
                worst / capacity(l)
            })
            .collect()
    };

    let (critical_level, &bound) = per_level
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("a valid spec has at least one level");
    CutBound {
        bound,
        critical_level,
        per_level,
    }
}

/// A scheme's maximum expected channel load against the cut bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionRatio {
    /// Routing scheme name.
    pub algorithm: String,
    /// Maximum expected channel load of the scheme.
    pub mcl: f64,
    /// Tree-cut lower bound on any routing's maximum channel load.
    pub lower_bound: f64,
    /// `mcl / lower_bound` — an upper estimate of the scheme's
    /// congestion-competitive ratio on this traffic (1.0 = certified
    /// optimal).
    pub ratio: f64,
}

/// Estimate the oblivious congestion ratio of `algo` on `traffic`: its
/// exact expected MCL divided by the tree-cut lower bound.
pub fn oblivious_congestion_ratio<A: RouteDistribution + ?Sized>(
    xgft: &Xgft,
    algo: &A,
    traffic: &TrafficMatrix,
) -> CongestionRatio {
    let loads = ExpectedLoads::compute(xgft, algo, traffic);
    congestion_ratio_of(algo.name(), &loads, xgft, traffic)
}

/// The congestion ratio for loads that have already been computed.
pub fn congestion_ratio_of(
    algorithm: String,
    loads: &ExpectedLoads,
    xgft: &Xgft,
    traffic: &TrafficMatrix,
) -> CongestionRatio {
    let mcl = loads.mcl();
    let bound = tree_cut_lower_bound(xgft, traffic).bound;
    CongestionRatio {
        algorithm,
        mcl,
        lower_bound: bound,
        ratio: if bound > 0.0 { mcl / bound } else { 1.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft_core::{DModK, RandomRouting, SModK};
    use xgft_topo::XgftSpec;

    fn two_level(w2: usize) -> Xgft {
        Xgft::new(XgftSpec::slimmed_two_level(16, w2).unwrap()).unwrap()
    }

    #[test]
    fn uniform_bound_closed_form_matches_flow_accounting() {
        let xgft = two_level(10);
        let closed = tree_cut_lower_bound(&xgft, &TrafficMatrix::uniform(256));
        // Materialise the same traffic as explicit flows.
        let flows: Vec<(usize, usize, f64)> = (0..256)
            .flat_map(|s| (0..256).map(move |d| (s, d, 1.0)))
            .collect();
        let explicit = tree_cut_lower_bound(&xgft, &TrafficMatrix::from_flows(256, flows));
        assert_eq!(closed.per_level.len(), 2);
        for (a, b) in closed.per_level.iter().zip(&explicit.per_level) {
            assert!((a - b).abs() < 1e-6);
        }
        // Level 0: each leaf sends to 255 others over 1 link. Level 1:
        // 16 leaves x 240 cross-switch partners over 10 channels = 384.
        assert!((closed.per_level[0] - 255.0).abs() < 1e-9);
        assert!((closed.per_level[1] - 384.0).abs() < 1e-9);
        assert_eq!(closed.critical_level, 1);
        assert!((closed.bound - 384.0).abs() < 1e-9);
    }

    #[test]
    fn random_is_congestion_optimal_on_uniform_traffic() {
        // Random's expected loads are perfectly even per level, so its MCL
        // meets the cut bound exactly: ratio 1.
        let xgft = two_level(10);
        let traffic = TrafficMatrix::uniform(256);
        let cr = oblivious_congestion_ratio(&xgft, &RandomRouting::new(1), &traffic);
        assert!((cr.ratio - 1.0).abs() < 1e-9, "ratio {}", cr.ratio);
        assert_eq!(cr.algorithm, "random");
    }

    #[test]
    fn ratio_is_at_least_one() {
        // The bound is a true lower bound: no scheme can beat it.
        let xgft = two_level(6);
        for traffic in [
            TrafficMatrix::uniform(256),
            TrafficMatrix::from_flows(256, (0..256).map(|s| (s, (s + 16) % 256, 1.0))),
        ] {
            for algo in [
                &RandomRouting::new(2) as &dyn RouteDistribution,
                &SModK::new(),
                &DModK::new(),
            ] {
                let cr = oblivious_congestion_ratio(&xgft, algo, &traffic);
                assert!(
                    cr.ratio >= 1.0 - 1e-9,
                    "{} ratio {} below 1",
                    cr.algorithm,
                    cr.ratio
                );
            }
        }
    }

    #[test]
    fn dmodk_pathology_shows_up_as_a_large_ratio() {
        // The CG fifth-phase congruence: D-mod-k piles 8 flows of a switch
        // onto one up channel while the cut bound stays at ~1 flow per
        // channel width — the ratio exposes the pathology analytically.
        let xgft = two_level(16);
        let flows: Vec<(usize, usize, f64)> = (0..128usize)
            .map(|s| {
                (
                    s,
                    xgft_patterns::generators::cg_transpose_partner(s, 128),
                    1.0,
                )
            })
            .filter(|&(s, d, _)| s != d)
            .collect();
        let traffic = TrafficMatrix::from_flows(256, flows);
        let dmodk = oblivious_congestion_ratio(&xgft, &DModK::new(), &traffic);
        let random = oblivious_congestion_ratio(&xgft, &RandomRouting::new(1), &traffic);
        assert!(
            dmodk.ratio > 2.0 * random.ratio,
            "d-mod-k {} vs random {}",
            dmodk.ratio,
            random.ratio
        );
    }

    #[test]
    fn empty_traffic_has_unit_ratio() {
        let xgft = two_level(4);
        let traffic = TrafficMatrix::from_flows(256, Vec::<(usize, usize, f64)>::new());
        let cr = oblivious_congestion_ratio(&xgft, &DModK::new(), &traffic);
        assert_eq!(cr.mcl, 0.0);
        assert_eq!(cr.lower_bound, 0.0);
        assert_eq!(cr.ratio, 1.0);
    }
}
