//! XGFT specifications: the `(h; m_1..m_h; w_1..w_h)` parameter vectors.

use crate::error::TopologyError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The parameters of an `XGFT(h; m_1..m_h; w_1..w_h)`.
///
/// * `h` — height of the tree; leaves live at level 0, roots at level `h`.
/// * `m_i` — number of children of every non-leaf node at level `i`
///   (1-based, `1 ≤ i ≤ h`).
/// * `w_i` — number of parents of every non-root node at level `i − 1`
///   (1-based, `1 ≤ i ≤ h`), i.e. the number of "colors" of level-`i`
///   switches reachable from below.
///
/// A k-ary n-tree is `XGFT(n; k,…,k; 1,k,…,k)`; a *slimmed* k-ary n-tree has
/// some `w_i < k` for `i ≥ 2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct XgftSpec {
    m: Vec<usize>,
    w: Vec<usize>,
}

impl XgftSpec {
    /// Create a specification from the `m` and `w` vectors (both of length
    /// `h`, the height). Parameters are validated: both vectors must be
    /// non-empty, of equal length, and strictly positive.
    pub fn new(m: Vec<usize>, w: Vec<usize>) -> Result<Self, TopologyError> {
        if m.is_empty() || w.is_empty() {
            return Err(TopologyError::EmptySpec);
        }
        if m.len() != w.len() {
            return Err(TopologyError::BadParentArity {
                expected: m.len(),
                got: w.len(),
            });
        }
        for (i, &mi) in m.iter().enumerate() {
            if mi == 0 {
                return Err(TopologyError::ZeroParameter { level: i + 1 });
            }
        }
        for (i, &wi) in w.iter().enumerate() {
            if wi == 0 {
                return Err(TopologyError::ZeroParameter { level: i + 1 });
            }
        }
        Ok(XgftSpec { m, w })
    }

    /// The canonical k-ary n-tree: `XGFT(n; k,…,k; 1,k,…,k)`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `n == 0`.
    pub fn k_ary_n_tree(k: usize, n: usize) -> Self {
        assert!(k > 0 && n > 0, "k-ary n-tree requires k >= 1 and n >= 1");
        let m = vec![k; n];
        let mut w = vec![k; n];
        w[0] = 1;
        XgftSpec { m, w }
    }

    /// A slimmed two-level tree built from `radix`-port switches:
    /// `XGFT(2; k, k; 1, w2)` — the family swept in Figures 2 and 5 of the
    /// paper (`k = 16`, `w2 = 16 … 1`).
    pub fn slimmed_two_level(k: usize, w2: usize) -> Result<Self, TopologyError> {
        XgftSpec::new(vec![k, k], vec![1, w2])
    }

    /// A slimmed k-ary n-tree where level `i ≥ 2` keeps only `w[i]` parents.
    /// `w_overrides` supplies `w_2 … w_n`; missing entries default to `k`.
    pub fn slimmed_k_ary_n_tree(
        k: usize,
        n: usize,
        w_overrides: &[usize],
    ) -> Result<Self, TopologyError> {
        if n == 0 || k == 0 {
            return Err(TopologyError::EmptySpec);
        }
        let m = vec![k; n];
        let mut w = vec![k; n];
        w[0] = 1;
        for (i, &ov) in w_overrides.iter().enumerate() {
            let level = i + 2;
            if level > n {
                break;
            }
            if ov == 0 {
                return Err(TopologyError::ZeroParameter { level });
            }
            if ov > k {
                return Err(TopologyError::NotSlimmed { level });
            }
            w[level - 1] = ov;
        }
        XgftSpec::new(m, w)
    }

    /// An `m`-ary complete tree: `XGFT(h; m,…,m; 1,…,1)` (single path to a
    /// single root subtree at every level).
    pub fn complete_tree(m: usize, h: usize) -> Result<Self, TopologyError> {
        XgftSpec::new(vec![m; h], vec![1; h])
    }

    /// Height `h` of the tree (number of switch levels).
    pub fn height(&self) -> usize {
        self.m.len()
    }

    /// `m_i`, the number of children of a node at level `i` (1-based).
    ///
    /// # Panics
    /// Panics if `i` is 0 or exceeds the height.
    pub fn m(&self, i: usize) -> usize {
        assert!(i >= 1 && i <= self.height(), "m index {i} out of range");
        self.m[i - 1]
    }

    /// `w_i`, the number of parents of a node at level `i − 1` (1-based).
    ///
    /// # Panics
    /// Panics if `i` is 0 or exceeds the height.
    pub fn w(&self, i: usize) -> usize {
        assert!(i >= 1 && i <= self.height(), "w index {i} out of range");
        self.w[i - 1]
    }

    /// The full `m` vector (`m_1 … m_h`).
    pub fn m_vec(&self) -> &[usize] {
        &self.m
    }

    /// The full `w` vector (`w_1 … w_h`).
    pub fn w_vec(&self) -> &[usize] {
        &self.w
    }

    /// Number of leaf (processing) nodes, `N = Π_{i=1}^{h} m_i`.
    pub fn num_leaves(&self) -> usize {
        self.m.iter().product()
    }

    /// Number of nodes at level `l` (0-based level, `0 ≤ l ≤ h`):
    /// `N_l = Π_{j=l+1}^{h} m_j · Π_{j=1}^{l} w_j`.
    pub fn nodes_at_level(&self, l: usize) -> usize {
        assert!(l <= self.height(), "level {l} out of range");
        let above: usize = self.m[l..].iter().product();
        let below: usize = self.w[..l].iter().product();
        above * below
    }

    /// Total number of inner (switch) nodes, Eq. (1) of the paper:
    /// `I = Σ_{i=1}^{h} ( Π_{j=i+1}^{h} m_j · Π_{j=1}^{i} w_j )`.
    pub fn inner_switches(&self) -> usize {
        (1..=self.height()).map(|i| self.nodes_at_level(i)).sum()
    }

    /// Number of up-links leaving level `l` (towards level `l+1`):
    /// `N_l · w_{l+1}`. Returns 0 for the root level.
    pub fn up_links_at_level(&self, l: usize) -> usize {
        assert!(l <= self.height(), "level {l} out of range");
        if l == self.height() {
            0
        } else {
            self.nodes_at_level(l) * self.w(l + 1)
        }
    }

    /// Number of down-links leaving level `l` (towards level `l−1`):
    /// `N_l · m_l`. Returns 0 for the leaf level. By construction this equals
    /// [`XgftSpec::up_links_at_level`]`(l-1)`.
    pub fn down_links_at_level(&self, l: usize) -> usize {
        assert!(l <= self.height(), "level {l} out of range");
        if l == 0 {
            0
        } else {
            self.nodes_at_level(l) * self.m(l)
        }
    }

    /// Total number of bidirectional cables in the network
    /// (= Σ_l up_links(l)).
    pub fn total_cables(&self) -> usize {
        (0..self.height()).map(|l| self.up_links_at_level(l)).sum()
    }

    /// Number of distinct NCAs available to a pair whose nearest common
    /// ancestors live at `level`: `Π_{j=1}^{level} w_j`.
    pub fn ncas_at_level(&self, level: usize) -> usize {
        assert!(level <= self.height(), "level {level} out of range");
        self.w[..level].iter().product()
    }

    /// True if this spec is a (possibly slimmed) k-ary n-tree: all `m_i`
    /// equal, `w_1 = 1`.
    pub fn is_k_ary_like(&self) -> bool {
        self.w[0] == 1 && self.m.iter().all(|&mi| mi == self.m[0])
    }

    /// True if this spec is a *full* k-ary n-tree (no slimming).
    pub fn is_full_k_ary_n_tree(&self) -> bool {
        self.is_k_ary_like()
            && self.w[1..]
                .iter()
                .zip(&self.m[1..])
                .all(|(&wi, &mi)| wi == mi)
    }

    /// True if some level has fewer parents than the full tree would
    /// (`w_i < m_i` for some `i ≥ 2`), i.e. the network is blocking.
    pub fn is_slimmed(&self) -> bool {
        self.w.iter().zip(&self.m).skip(1).any(|(&wi, &mi)| wi < mi)
    }

    /// Bisection-style capacity ratio at the top level: the ratio between the
    /// number of links entering level `h` and the number of leaves. For a
    /// full k-ary n-tree this is 1.0 (full bisection bandwidth); slimming
    /// reduces it proportionally.
    pub fn top_level_capacity_ratio(&self) -> f64 {
        let h = self.height();
        self.down_links_at_level(h) as f64 / self.num_leaves() as f64
    }
}

impl fmt::Display for XgftSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms: Vec<String> = self.m.iter().map(|x| x.to_string()).collect();
        let ws: Vec<String> = self.w.iter().map(|x| x.to_string()).collect();
        write!(
            f,
            "XGFT({};{};{})",
            self.height(),
            ms.join(","),
            ws.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_ary_n_tree_parameters() {
        let s = XgftSpec::k_ary_n_tree(4, 3);
        assert_eq!(s.height(), 3);
        assert_eq!(s.num_leaves(), 64);
        assert_eq!(s.m_vec(), &[4, 4, 4]);
        assert_eq!(s.w_vec(), &[1, 4, 4]);
        assert!(s.is_k_ary_like());
        assert!(s.is_full_k_ary_n_tree());
        assert!(!s.is_slimmed());
    }

    #[test]
    fn k_ary_n_tree_switch_count_matches_closed_form() {
        // A k-ary n-tree has n * k^(n-1) switches.
        for k in 2..=5 {
            for n in 1..=4 {
                let s = XgftSpec::k_ary_n_tree(k, n);
                assert_eq!(s.inner_switches(), n * k.pow(n as u32 - 1), "k={k}, n={n}");
            }
        }
    }

    #[test]
    fn eq1_examples_from_paper_family() {
        // XGFT(2;16,16;1,w2) has 16 level-1 switches and w2 level-2 switches.
        for w2 in 1..=16 {
            let s = XgftSpec::slimmed_two_level(16, w2).unwrap();
            assert_eq!(s.nodes_at_level(1), 16);
            assert_eq!(s.nodes_at_level(2), w2);
            assert_eq!(s.inner_switches(), 16 + w2);
            assert_eq!(s.num_leaves(), 256);
        }
    }

    #[test]
    fn nodes_per_level_match_table_i() {
        let s = XgftSpec::new(vec![4, 4, 4], vec![1, 2, 2]).unwrap();
        // Level 0: m1*m2*m3 = 64 leaves.
        assert_eq!(s.nodes_at_level(0), 64);
        // Level 1: m2*m3*w1 = 16.
        assert_eq!(s.nodes_at_level(1), 16);
        // Level 2: m3*w1*w2 = 8.
        assert_eq!(s.nodes_at_level(2), 8);
        // Level 3 (roots): w1*w2*w3 = 4.
        assert_eq!(s.nodes_at_level(3), 4);
        assert_eq!(s.inner_switches(), 16 + 8 + 4);
    }

    #[test]
    fn link_counts_are_consistent_between_levels() {
        let s = XgftSpec::new(vec![4, 3, 2], vec![1, 2, 3]).unwrap();
        for l in 1..=s.height() {
            assert_eq!(
                s.down_links_at_level(l),
                s.up_links_at_level(l - 1),
                "level {l}"
            );
        }
        assert_eq!(s.up_links_at_level(s.height()), 0);
        assert_eq!(s.down_links_at_level(0), 0);
    }

    #[test]
    fn slimmed_two_level_detection() {
        let full = XgftSpec::slimmed_two_level(16, 16).unwrap();
        assert!(!full.is_slimmed());
        assert!(full.is_full_k_ary_n_tree());
        let slim = XgftSpec::slimmed_two_level(16, 9).unwrap();
        assert!(slim.is_slimmed());
        assert!(!slim.is_full_k_ary_n_tree());
        assert!(slim.is_k_ary_like());
    }

    #[test]
    fn slimmed_k_ary_n_tree_overrides() {
        let s = XgftSpec::slimmed_k_ary_n_tree(4, 3, &[2, 3]).unwrap();
        assert_eq!(s.w_vec(), &[1, 2, 3]);
        assert!(s.is_slimmed());
        assert!(XgftSpec::slimmed_k_ary_n_tree(4, 3, &[5]).is_err());
        assert!(XgftSpec::slimmed_k_ary_n_tree(4, 3, &[0]).is_err());
    }

    #[test]
    fn ncas_at_level_counts() {
        let s = XgftSpec::slimmed_two_level(16, 10).unwrap();
        assert_eq!(s.ncas_at_level(0), 1);
        assert_eq!(s.ncas_at_level(1), 1);
        assert_eq!(s.ncas_at_level(2), 10);
        let k = XgftSpec::k_ary_n_tree(4, 3);
        assert_eq!(k.ncas_at_level(3), 16);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert_eq!(XgftSpec::new(vec![], vec![]), Err(TopologyError::EmptySpec));
        assert!(XgftSpec::new(vec![2, 2], vec![1]).is_err());
        assert_eq!(
            XgftSpec::new(vec![2, 0], vec![1, 2]),
            Err(TopologyError::ZeroParameter { level: 2 })
        );
        assert_eq!(
            XgftSpec::new(vec![2, 2], vec![0, 2]),
            Err(TopologyError::ZeroParameter { level: 1 })
        );
    }

    #[test]
    fn capacity_ratio_reflects_slimming() {
        let full = XgftSpec::slimmed_two_level(16, 16).unwrap();
        assert!((full.top_level_capacity_ratio() - 1.0).abs() < 1e-12);
        let half = XgftSpec::slimmed_two_level(16, 8).unwrap();
        assert!((half.top_level_capacity_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn complete_tree_has_single_root() {
        let s = XgftSpec::complete_tree(4, 3).unwrap();
        assert_eq!(s.nodes_at_level(3), 1);
        assert_eq!(s.num_leaves(), 64);
        assert_eq!(s.inner_switches(), 16 + 4 + 1);
    }

    #[test]
    fn display_is_round_trippable_by_eye() {
        let s = XgftSpec::new(vec![16, 16], vec![1, 10]).unwrap();
        assert_eq!(s.to_string(), "XGFT(2;16,16;1,10)");
    }

    #[test]
    fn total_cables_counts_every_level() {
        let s = XgftSpec::k_ary_n_tree(2, 2); // 4 leaves, 2+2 switches
                                              // Level 0 up-links: 4*1 = 4; level 1 up-links: 2*2 = 4.
        assert_eq!(s.total_cables(), 8);
    }
}
