//! Regenerates the Sec. VII-B/C analysis: the combinatorial equivalence of
//! S-mod-k and D-mod-k over random permutations (exact duality with the
//! inverse pattern, plus the empirical contention-level distributions).

use xgft_analysis::experiments::equivalence;
use xgft_bench::ExperimentArgs;

fn main() {
    let args = ExperimentArgs::parse();
    // Sample count scales with --seeds so --quick stays fast.
    let samples = (args.seeds * 10).max(20);
    for w2 in [16usize, 10, 4] {
        let result = equivalence::run(16, w2, samples, 2009);
        println!("{}", result.render());
        if args.json {
            println!(
                "{}",
                serde_json::to_string_pretty(&result).expect("serialisable")
            );
        }
    }
}
