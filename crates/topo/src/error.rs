//! Error types for topology construction and route validation.

use std::fmt;

/// Errors produced while constructing an [`crate::Xgft`] or validating
/// labels, nodes and routes against it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The specification has zero height.
    EmptySpec,
    /// The `m` (children-per-level) vector has the wrong length.
    BadChildArity {
        /// Expected length (the height `h`).
        expected: usize,
        /// Actual length supplied.
        got: usize,
    },
    /// The `w` (parents-per-level) vector has the wrong length.
    BadParentArity {
        /// Expected length (the height `h`).
        expected: usize,
        /// Actual length supplied.
        got: usize,
    },
    /// A level parameter (`m_i` or `w_i`) is zero.
    ZeroParameter {
        /// 1-based level index of the offending parameter.
        level: usize,
    },
    /// A slimmed level is wider than the corresponding full level
    /// (`w_i > m_i` is allowed in general XGFTs but can be rejected by
    /// callers that require slimmed trees; this variant is used by the
    /// strict constructors).
    NotSlimmed {
        /// 1-based level index of the offending parameter.
        level: usize,
    },
    /// A leaf identifier is out of range.
    LeafOutOfRange {
        /// Offending leaf index.
        leaf: usize,
        /// Number of leaves in the topology.
        num_leaves: usize,
    },
    /// A node reference points outside the topology.
    NodeOutOfRange {
        /// Level of the offending node.
        level: usize,
        /// Index of the offending node within its level.
        index: usize,
    },
    /// A label does not match the radix structure of its level.
    InvalidLabel {
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// A route is malformed for the given source/destination pair.
    InvalidRoute {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A port number exceeds the arity of the node it is used on.
    PortOutOfRange {
        /// Level of the node.
        level: usize,
        /// Offending port.
        port: usize,
        /// Number of ports available in that direction.
        available: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptySpec => write!(f, "XGFT specification must have height >= 1"),
            TopologyError::BadChildArity { expected, got } => write!(
                f,
                "children vector m has length {got}, expected {expected} (the height)"
            ),
            TopologyError::BadParentArity { expected, got } => write!(
                f,
                "parents vector w has length {got}, expected {expected} (the height)"
            ),
            TopologyError::ZeroParameter { level } => {
                write!(f, "XGFT parameter at level {level} must be non-zero")
            }
            TopologyError::NotSlimmed { level } => write!(
                f,
                "level {level} has more parents than children of the level below; not a slimmed tree"
            ),
            TopologyError::LeafOutOfRange { leaf, num_leaves } => {
                write!(f, "leaf {leaf} out of range (topology has {num_leaves} leaves)")
            }
            TopologyError::NodeOutOfRange { level, index } => {
                write!(f, "node index {index} out of range at level {level}")
            }
            TopologyError::InvalidLabel { reason } => write!(f, "invalid node label: {reason}"),
            TopologyError::InvalidRoute { reason } => write!(f, "invalid route: {reason}"),
            TopologyError::PortOutOfRange {
                level,
                port,
                available,
            } => write!(
                f,
                "port {port} out of range at level {level} ({available} ports available)"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TopologyError::LeafOutOfRange {
            leaf: 300,
            num_leaves: 256,
        };
        let msg = e.to_string();
        assert!(msg.contains("300"));
        assert!(msg.contains("256"));

        let e = TopologyError::BadChildArity {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expected 3"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(TopologyError::EmptySpec, TopologyError::EmptySpec);
        assert_ne!(
            TopologyError::EmptySpec,
            TopologyError::ZeroParameter { level: 1 }
        );
    }
}
