//! Criterion benches for the `xgft-flow` analytical channel-load model.
//!
//! The headline numbers back the acceptance criterion that an XGFT with at
//! least 16 384 leaves is analysed in well under a second:
//!
//! * `closed_form/random_16384_leaves` — uniform all-pairs expected loads +
//!   MCL on `XGFT(2;128,128;1,64)` (runs in ~1 ms on a laptop core).
//! * `closed_form/rnca_32768_leaves` — the r-NCA seed marginal on a full
//!   32-ary 3-tree (196 608 channels, ~3 ms).
//! * `per_flow/dmodk_shift_16384` — the per-flow fallback on a 16 384-flow
//!   pattern with a deterministic scheme.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use xgft_core::{DModK, RandomNcaDown, RandomRouting};
use xgft_flow::{tree_cut_lower_bound, ExpectedLoads, TrafficMatrix, TrafficSpec};
use xgft_topo::{Xgft, XgftSpec};

fn closed_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_form");
    group.sample_size(10);

    let big = Xgft::new(XgftSpec::new(vec![128, 128], vec![1, 64]).unwrap()).unwrap();
    assert!(big.num_leaves() >= 16_384);
    let traffic = TrafficMatrix::uniform(big.num_leaves());
    let random = RandomRouting::new(0);
    group.bench_function("random_16384_leaves", |b| {
        b.iter(|| {
            let loads = ExpectedLoads::compute(&big, &random, &traffic);
            black_box(loads.mcl())
        })
    });

    let tall = Xgft::new(XgftSpec::k_ary_n_tree(32, 3)).unwrap();
    let tall_traffic = TrafficMatrix::uniform(tall.num_leaves());
    let rnca = RandomNcaDown::new(&tall, 0);
    group.bench_function("rnca_32768_leaves", |b| {
        b.iter(|| {
            let loads = ExpectedLoads::compute(&tall, &rnca, &tall_traffic);
            black_box(loads.mcl())
        })
    });

    group.bench_function("cut_bound_16384_leaves", |b| {
        b.iter(|| black_box(tree_cut_lower_bound(&big, &traffic).bound))
    });
    group.finish();
}

fn per_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_flow");
    group.sample_size(10);

    let big = Xgft::new(XgftSpec::new(vec![128, 128], vec![1, 64]).unwrap()).unwrap();
    let shift = TrafficSpec::Shift { offset: 128 }.matrix(big.num_leaves());
    let dmodk = DModK::new();
    group.bench_function("dmodk_shift_16384", |b| {
        b.iter(|| {
            let loads = ExpectedLoads::compute(&big, &dmodk, &shift);
            black_box(loads.mcl())
        })
    });

    let random = RandomRouting::new(0);
    group.bench_function("random_shift_16384", |b| {
        b.iter(|| {
            let loads = ExpectedLoads::compute(&big, &random, &shift);
            black_box(loads.mcl())
        })
    });
    group.finish();
}

criterion_group!(benches, closed_form, per_flow);
criterion_main!(benches);
