//! Exact channel loads on a degraded topology.
//!
//! On a pristine XGFT the model computes expected loads from each scheme's
//! closed-form route *distribution*. Under faults the routes are whatever
//! the fault-aware fallback produced — a concrete, deterministic table —
//! so the exact per-channel loads come straight from the compiled table's
//! stored paths: every flow adds its weight to each channel of its path,
//! and flows whose pair has no surviving route are reported as unroutable
//! demand instead of being silently ignored.
//!
//! Because the accumulation consumes any [`RouteSource`] — the flat
//! [`CompiledRouteTable`] or the closed-form `CompactRoutes` engine — the
//! same function is also the *per-instance* exact model on pristine
//! topologies (a point mass per pair), which is what the engine-agreement
//! harness compares against the simulators: for any fixed route
//! representation the three engines must agree channel by channel, faults
//! or no faults. With the compact representation the accumulation needs no
//! per-pair storage at all, which is what pushes flow MCL sweeps past a
//! million leaves.

use crate::loads::ExpectedLoads;
use crate::traffic::TrafficMatrix;
use xgft_core::{CompiledRouteTable, RouteSource};
use xgft_topo::Xgft;

/// Exact per-channel loads of a compiled (possibly fault-patched) route
/// table under a traffic matrix, plus the demand the table could not route.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedLoads {
    loads: Vec<f64>,
    routed_demand: f64,
    unroutable: Vec<(usize, usize, f64)>,
}

impl DegradedLoads {
    /// Accumulate the loads of every flow of `traffic` over the paths
    /// stored in `table`. Flows whose pair misses in the table are recorded
    /// as unroutable (self-flows never enter the network and are skipped).
    ///
    /// # Panics
    /// Panics if the table and topology disagree on the machine size, or
    /// the traffic matrix references leaves outside the machine.
    pub fn from_compiled(xgft: &Xgft, table: &CompiledRouteTable, traffic: &TrafficMatrix) -> Self {
        Self::from_source(xgft, table, traffic)
    }

    /// Accumulate the loads of every flow of `traffic` over the paths of
    /// any route representation ([`CompiledRouteTable`], `CompactRoutes`,
    /// …). Flows whose pair misses are recorded as unroutable (self-flows
    /// never enter the network and are skipped).
    ///
    /// # Panics
    /// Panics if the representation and topology disagree on the machine
    /// size, or the traffic matrix references leaves outside the machine.
    pub fn from_source<R: RouteSource>(xgft: &Xgft, table: &R, traffic: &TrafficMatrix) -> Self {
        xgft_obs::span!("flow.loads");
        assert_eq!(
            table.num_leaves(),
            xgft.num_leaves(),
            "route table compiled for a different machine size"
        );
        assert_eq!(
            traffic.num_leaves(),
            xgft.num_leaves(),
            "traffic matrix and topology disagree on the number of leaves"
        );
        let mut loads = vec![0.0f64; xgft.channels().len()];
        let mut routed_demand = 0.0;
        let mut unroutable = Vec::new();
        let mut scratch = Vec::new();
        traffic.for_each_flow(|s, d, w| {
            if s == d {
                return;
            }
            match table.path_in(s, d, &mut scratch) {
                Some(path) => {
                    for &c in path {
                        loads[c as usize] += w;
                    }
                    routed_demand += w;
                }
                None => unroutable.push((s, d, w)),
            }
        });
        DegradedLoads {
            loads,
            routed_demand,
            unroutable,
        }
    }

    /// The dense per-channel loads.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Maximum channel load over all channels.
    pub fn mcl(&self) -> f64 {
        self.loads.iter().copied().fold(0.0, f64::max)
    }

    /// Maximum channel load restricted to switch-to-switch channels
    /// (levels ≥ 1) — the routing-sensitive part of the MCL; level-0
    /// channels carry the same load under every minimal scheme.
    pub fn network_mcl(&self, xgft: &Xgft) -> f64 {
        let mut max = 0.0f64;
        for level in 1..xgft.height() {
            for idx in xgft.channels().level_range(level) {
                max = max.max(self.loads[idx]);
            }
        }
        max
    }

    /// Demand (weight) actually placed on the network.
    pub fn routed_demand(&self) -> f64 {
        self.routed_demand
    }

    /// Demand whose pair has no surviving route.
    pub fn unroutable_demand(&self) -> f64 {
        self.unroutable.iter().map(|&(_, _, w)| w).sum()
    }

    /// The unroutable flows, in traffic-matrix order.
    pub fn unroutable(&self) -> &[(usize, usize, f64)] {
        &self.unroutable
    }

    /// True when every flow of the traffic matrix found a route.
    pub fn is_fully_routed(&self) -> bool {
        self.unroutable.is_empty()
    }

    /// Consistency bridge: on a table that stores a route for every flow,
    /// the exact loads must match the distribution-based model's loads for
    /// the same deterministic scheme. Exposed for tests.
    pub fn matches_expected(&self, expected: &ExpectedLoads, tolerance: f64) -> bool {
        self.loads
            .iter()
            .zip(expected.loads())
            .all(|(a, b)| (a - b).abs() <= tolerance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft_core::{CompiledRouteTable, DModK, RandomRouting};
    use xgft_topo::{FaultSet, Xgft, XgftSpec};

    fn two_level(w2: usize) -> Xgft {
        Xgft::new(XgftSpec::slimmed_two_level(4, w2).unwrap()).unwrap()
    }

    #[test]
    fn pristine_table_loads_match_the_distribution_model() {
        let xgft = two_level(3);
        let table = CompiledRouteTable::compile_all_pairs(&xgft, &DModK::new());
        let traffic = TrafficMatrix::uniform(16);
        let exact = DegradedLoads::from_compiled(&xgft, &table, &traffic);
        let model = crate::loads::ExpectedLoads::compute(&xgft, &DModK::new(), &traffic);
        assert!(exact.matches_expected(&model, 1e-9));
        assert!(exact.is_fully_routed());
        assert!((exact.mcl() - model.mcl()).abs() < 1e-9);
        assert_eq!(exact.unroutable_demand(), 0.0);
        assert!((exact.routed_demand() - 16.0 * 15.0).abs() < 1e-9);
    }

    #[test]
    fn patched_table_loads_avoid_dead_channels_and_conserve_demand() {
        let xgft = two_level(4);
        let mut table = CompiledRouteTable::compile_all_pairs(&xgft, &RandomRouting::new(3));
        let faults = FaultSet::uniform_links(&xgft, 0.25, 9);
        table.patch(&xgft, &faults);
        let traffic = TrafficMatrix::uniform(16);
        let loads = DegradedLoads::from_compiled(&xgft, &table, &traffic);
        // No load ever lands on a dead channel.
        for dense in faults.iter_failed() {
            assert_eq!(loads.loads()[dense], 0.0, "dead channel {dense} loaded");
        }
        // Every unit of routed demand occupies 2 * nca_level channels.
        let expected_total: f64 = (0..16)
            .flat_map(|s| (0..16).map(move |d| (s, d)))
            .filter(|&(s, d)| s != d && table.path(s, d).is_some())
            .map(|(s, d)| 2.0 * xgft.nca_level(s, d) as f64)
            .sum();
        let total: f64 = loads.loads().iter().sum();
        assert!((total - expected_total).abs() < 1e-9);
        assert!(
            (loads.routed_demand() + loads.unroutable_demand() - 16.0 * 15.0).abs() < 1e-9,
            "routed + unroutable must cover all demand"
        );
    }

    #[test]
    fn unroutable_flows_are_reported_not_dropped_silently() {
        // Cut both up cables of switch 0 in a w2 = 2 tree: its leaves lose
        // every cross-switch partner.
        let xgft = two_level(2);
        let mut faults = FaultSet::none(&xgft);
        faults.fail_cable(xgft.channels(), 1, 0, 0);
        faults.fail_cable(xgft.channels(), 1, 0, 1);
        let mut table = CompiledRouteTable::compile_all_pairs(&xgft, &DModK::new());
        table.patch(&xgft, &faults);
        let traffic = TrafficMatrix::uniform(16);
        let loads = DegradedLoads::from_compiled(&xgft, &table, &traffic);
        assert!(!loads.is_fully_routed());
        // Leaves 0..4 each lose 12 cross-switch partners, both directions.
        assert_eq!(loads.unroutable().len(), 2 * 4 * 12);
        assert!(loads
            .unroutable()
            .iter()
            .all(|&(s, d, _)| (s < 4) ^ (d < 4)));
        assert!(loads.mcl() > 0.0);
    }

    #[test]
    fn compact_source_produces_identical_loads_to_compiled() {
        use xgft_core::{CompactRoutes, CompactScheme};
        let xgft = two_level(3);
        let traffic = TrafficMatrix::uniform(16);
        let compiled = CompiledRouteTable::compile_all_pairs(&xgft, &RandomRouting::new(11));
        let compact = CompactRoutes::all_pairs(&xgft, CompactScheme::Random { seed: 11 });
        let a = DegradedLoads::from_compiled(&xgft, &compiled, &traffic);
        let b = DegradedLoads::from_source(&xgft, &compact, &traffic);
        assert_eq!(a, b);
        assert_eq!(a.network_mcl(&xgft), b.network_mcl(&xgft));
        assert!(a.network_mcl(&xgft) <= a.mcl());
        assert!(a.network_mcl(&xgft) > 0.0);
    }

    #[test]
    #[should_panic(expected = "machine size")]
    fn mismatched_table_is_rejected() {
        let xgft = two_level(2);
        let other = Xgft::k_ary_n_tree(2, 2);
        let table = CompiledRouteTable::compile_all_pairs(&other, &DModK::new());
        let _ = DegradedLoads::from_compiled(&xgft, &table, &TrafficMatrix::uniform(16));
    }
}
