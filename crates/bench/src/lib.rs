//! # xgft-bench — experiment binaries and Criterion benches
//!
//! One binary per table/figure of the paper (the repository `README.md`
//! carries the index) plus Criterion micro-benchmarks of the machinery
//! itself. This library hosts the small command-line helper the binaries
//! share.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;

pub use cli::ExperimentArgs;

/// Print an analytical (`--analytic`) sweep result: the text table, plus
/// pretty JSON when requested. Shared by the figure binaries so the
/// analytic output format lives in one place.
pub fn emit_analytic(result: &xgft_flow::FlowSweepResult, json: bool) {
    println!("{}", result.render_table());
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(result).expect("serialisable")
        );
    }
}
