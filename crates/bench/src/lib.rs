//! # xgft-bench — experiment binaries and Criterion benches
//!
//! One binary per table/figure of the paper (the repository `README.md`
//! carries the index) plus Criterion micro-benchmarks of the machinery
//! itself. This library hosts the small command-line helper the binaries
//! share.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;

pub use cli::ExperimentArgs;

/// Scale a per-message byte count by the CLI's `--scale` factor, flooring
/// at 1 KB so heavily scaled-down runs still move whole segments.
pub fn scale_bytes(bytes: u64, scale: f64) -> u64 {
    ((bytes as f64 * scale).round() as u64).max(1024)
}

/// Instantiate the campaign workload named by `--workload` for a radix-`k`
/// two-level machine (`k²` ranks). Shared by the `campaign` and `faults`
/// binaries so the flag always means the same pattern.
pub fn workload_pattern(
    name: &str,
    k: usize,
    byte_scale: f64,
) -> Result<xgft_patterns::Pattern, String> {
    use xgft_patterns::generators;
    let n = k * k;
    match name {
        "wrf" => Ok(generators::wrf_mesh_exchange(
            k,
            k,
            scale_bytes(generators::WRF_DEFAULT_BYTES, byte_scale),
        )),
        "cg" => {
            if !n.is_power_of_two() || n < 32 {
                return Err(format!("cg needs k*k a power of two >= 32, got {n}"));
            }
            Ok(generators::cg_d(
                n,
                scale_bytes(generators::CG_D_PHASE_BYTES, byte_scale),
            ))
        }
        "shift" => Ok(generators::shift(
            n,
            k,
            scale_bytes(generators::WRF_DEFAULT_BYTES, byte_scale),
        )),
        other => Err(format!("unknown workload: {other} (wrf|cg|shift)")),
    }
}

/// Print an analytical (`--analytic`) sweep result: the text table, plus
/// pretty JSON when requested. Shared by the figure binaries so the
/// analytic output format lives in one place.
pub fn emit_analytic(result: &xgft_flow::FlowSweepResult, json: bool) {
    println!("{}", result.render_table());
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(result).expect("serialisable")
        );
    }
}
