//! The event-driven network simulator.
//!
//! See the crate-level docs for the model. The simulator is deterministic:
//! identical inputs (topology, config, schedule of messages, routes and
//! failure events) produce identical timings.
//!
//! ## Channel failures
//!
//! [`NetworkSim::fail_channel`] schedules a directed channel to die mid-run.
//! From the failure instant on, the channel's traffic is handled per
//! [`FailurePolicy`]: messages injected *before* the failure either drain
//! over the dead channel (`CompleteInFlight` — the lossless
//! "drain-then-cut" model) or are dropped at it (`Drop` — the lossy model);
//! messages injected at or after the failure whose fixed path still crosses
//! the dead channel are always dropped there, because a correctly patched
//! route table would never have sent them that way. Dropped messages
//! release every buffer credit they hold (so unrelated flows keep moving),
//! never complete, and are counted in [`SimReport::dropped_messages`].
//!
//! [`NetworkSim::repair_channel`] is the inverse: from the repair instant
//! on, the channel serves traffic normally again. Credits need no explicit
//! restoration — a failed channel never takes credits for dropped traffic
//! (segments drop *before* queueing) and every credit taken by draining
//! in-flight traffic returns through the ordinary [`Event::CreditReturn`]
//! flow — so a repaired channel starts with its full buffer once the
//! pre-failure traffic has drained. Messages dropped while the channel was
//! dead stay dropped; a fail → repair → inject cycle delivers the fresh
//! message with pristine latency.

use crate::batch::InjectionBatch;
use crate::config::{NetworkConfig, SwitchingMode};
use crate::event::{Event, EventQueue};
use crate::message::{MessageId, MessageSlab, MessageStatus, Segment};
use crate::stats::{MessageRecord, SimReport};
use std::collections::VecDeque;
use xgft_topo::{Route, Xgft};

/// A delivered-message notification returned by
/// [`NetworkSim::run_until_next_completion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The delivered message.
    pub id: MessageId,
    /// Source leaf of the message.
    pub src: usize,
    /// Destination leaf of the message.
    pub dst: usize,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Delivery time in picoseconds.
    pub completed_at_ps: u64,
}

/// What happens to traffic that meets a failed channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Messages injected before the failure still traverse the channel (it
    /// drains in-flight traffic); only later injections drop at it.
    CompleteInFlight,
    /// Every segment that reaches the channel from the failure instant on
    /// is lost, and queued segments are flushed immediately.
    Drop,
}

/// Per-directed-channel simulation state.
#[derive(Debug, Clone)]
struct ChannelState {
    /// Earliest time the link can start another transmission.
    free_at_ps: u64,
    /// Remaining downstream input-buffer slots (segments).
    credits: usize,
    /// Segments waiting at the upstream side of the channel, FIFO.
    waiting: VecDeque<Segment>,
    /// Accumulated busy (transmitting) time for utilization statistics.
    busy_ps: u64,
    /// Largest waiting-queue depth observed.
    max_queue: usize,
    /// Failure instant and policy, once the channel has died.
    failed: Option<(u64, FailurePolicy)>,
}

/// Per-source-adapter state: the active messages interleaved round-robin at
/// segment granularity.
#[derive(Debug, Clone, Default)]
struct AdapterState {
    /// Messages with segments still to inject, in round-robin order.
    active: VecDeque<MessageId>,
    /// True while one segment of this adapter sits in the injection queue
    /// waiting to start (only one is enqueued at a time so the round-robin
    /// decision is taken as late as possible).
    segment_enqueued: bool,
}

/// The event-driven simulator for one XGFT instance.
#[derive(Debug)]
pub struct NetworkSim {
    xgft: Xgft,
    config: NetworkConfig,
    now_ps: u64,
    queue: EventQueue,
    channels: Vec<ChannelState>,
    adapters: Vec<AdapterState>,
    /// Struct-of-arrays message store keyed by [`MessageId::slot`] (see
    /// [`MessageSlab`]): every hot-path access is a column index, drained
    /// slots are recycled under bumped generations so stale ids never alias
    /// a slot's next occupant.
    messages: MessageSlab,
    dropped_messages: usize,
    completions: VecDeque<Completion>,
    records: Vec<MessageRecord>,
    events_processed: u64,
    /// Serialization time of one full segment — cached because `try_start`
    /// pays it once per segment per hop and `NetworkConfig::serialization_ps`
    /// does float math.
    seg_full_ps: u64,
    /// Serialization time of one flit (the cut-through eligibility term).
    flit_ps: u64,
    /// Switch traversal latency in picoseconds.
    switch_ps: u64,
}

impl NetworkSim {
    /// Create a simulator for a topology with the given configuration.
    pub fn new(xgft: &Xgft, config: NetworkConfig) -> Self {
        let num_channels = xgft.channels().len();
        let channels = vec![
            ChannelState {
                free_at_ps: 0,
                credits: config.input_buffer_segments.max(1),
                waiting: VecDeque::new(),
                busy_ps: 0,
                max_queue: 0,
                failed: None,
            };
            num_channels
        ];
        let adapters = vec![AdapterState::default(); xgft.num_leaves()];
        let seg_full_ps = config.segment_serialization_ps();
        let flit_ps = config.serialization_ps(config.flit_bytes);
        let switch_ps = config.switch_latency_ps();
        NetworkSim {
            xgft: xgft.clone(),
            config,
            now_ps: 0,
            queue: EventQueue::new(),
            channels,
            adapters,
            messages: MessageSlab::new(),
            dropped_messages: 0,
            completions: VecDeque::new(),
            records: Vec::new(),
            events_processed: 0,
            seg_full_ps,
            flit_ps,
            switch_ps,
        }
    }

    /// Reclaim the simulator for a fresh run without reallocating: the
    /// event-queue ring, message slab columns, path arena, channel queues
    /// and adapter state are all emptied in place but keep their capacity.
    ///
    /// A reset simulator is behaviourally byte-identical to
    /// `NetworkSim::new(xgft, config)` — same event order, same minted
    /// [`MessageId`]s, same report — which is what lets campaign shards
    /// build one simulator and replay every seed/epoch into it (pinned by
    /// the `reset_is_byte_identical_to_a_fresh_simulator` test and the
    /// campaign golden fixtures).
    pub fn reset(&mut self) {
        self.now_ps = 0;
        self.queue.clear();
        let credits = self.config.input_buffer_segments.max(1);
        for channel in &mut self.channels {
            channel.free_at_ps = 0;
            channel.credits = credits;
            channel.waiting.clear();
            channel.busy_ps = 0;
            channel.max_queue = 0;
            channel.failed = None;
        }
        for adapter in &mut self.adapters {
            adapter.active.clear();
            adapter.segment_enqueued = false;
        }
        self.messages.clear();
        self.dropped_messages = 0;
        self.completions.clear();
        self.records.clear();
        self.events_processed = 0;
    }

    /// Current simulation time in picoseconds.
    pub fn now_ps(&self) -> u64 {
        self.now_ps
    }

    /// The configuration in use.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The topology being simulated.
    pub fn xgft(&self) -> &Xgft {
        &self.xgft
    }

    /// Number of live (not yet drained) messages the simulator tracks.
    pub fn num_messages(&self) -> usize {
        self.messages.live_count()
    }

    /// Serialization time of a segment of `bytes` bytes — the cached
    /// full-segment constant on the hot path (every segment except possibly
    /// a message's last is full-sized), the float fallback otherwise.
    #[inline]
    fn serialization(&self, bytes: u64) -> u64 {
        if bytes == self.config.segment_bytes {
            self.seg_full_ps
        } else {
            self.config.serialization_ps(bytes)
        }
    }

    /// Status of a message. Returns `None` once the message has been
    /// drained — *permanently*: the id carries its slot's generation tag,
    /// so even after the slot is recycled by a later
    /// [`NetworkSim::schedule_message`] the stale id keeps resolving to
    /// `None` instead of aliasing the new occupant.
    pub fn message_status(&self, id: MessageId) -> Option<MessageStatus> {
        if !self.messages.id_is_current(id) {
            return None;
        }
        Some(self.messages.status(id.slot()))
    }

    /// Recycle the slots of finished (delivered or dropped) messages whose
    /// [`Completion`]s have already been consumed, returning how many were
    /// drained. Each freed slot's generation is bumped, so the drained ids
    /// stay dead forever even after the slot is reused; per-message
    /// [`MessageRecord`]s already emitted are unaffected. Long seed
    /// campaigns call this between phases to keep the slab bounded.
    pub fn drain_delivered(&mut self) -> usize {
        let mut pending: Vec<u64> = self.completions.iter().map(|c| c.id.0).collect();
        pending.sort_unstable();
        self.messages.drain_finished(&pending)
    }

    /// True when no events are pending and no completions are waiting to be
    /// consumed.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.completions.is_empty()
    }

    /// Schedule the directed channel with dense index `channel` to fail at
    /// absolute time `at_ps`; traffic meeting the dead channel is handled
    /// per `policy` (see the module docs for the exact semantics).
    ///
    /// # Panics
    /// Panics if `channel` is out of range or `at_ps` lies in the past.
    pub fn fail_channel(&mut self, at_ps: u64, channel: usize, policy: FailurePolicy) {
        assert!(channel < self.channels.len(), "channel index out of range");
        assert!(
            at_ps >= self.now_ps,
            "cannot fail a channel in the past ({} < {})",
            at_ps,
            self.now_ps
        );
        self.queue.push(
            at_ps,
            Event::ChannelFail {
                channel: channel as u32,
                policy,
            },
        );
    }

    /// Schedule the directed channel with dense index `channel` to return to
    /// service at absolute time `at_ps`. Repairing a live channel is a
    /// no-op, so a repair may be scheduled unconditionally alongside the
    /// failure it undoes. Traffic dropped while the channel was dead stays
    /// dropped; from the repair instant on the channel behaves exactly like
    /// a pristine one (see the module docs for why credits need no explicit
    /// restoration).
    ///
    /// # Panics
    /// Panics if `channel` is out of range or `at_ps` lies in the past.
    pub fn repair_channel(&mut self, at_ps: u64, channel: usize) {
        assert!(channel < self.channels.len(), "channel index out of range");
        assert!(
            at_ps >= self.now_ps,
            "cannot repair a channel in the past ({} < {})",
            at_ps,
            self.now_ps
        );
        self.queue.push(
            at_ps,
            Event::ChannelRepair {
                channel: channel as u32,
            },
        );
    }

    /// True once `channel` has failed (at or before the current time).
    pub fn channel_is_failed(&self, channel: usize) -> bool {
        self.channels[channel].failed.is_some()
    }

    /// Number of messages dropped at failed channels so far.
    pub fn dropped_messages(&self) -> usize {
        self.dropped_messages
    }

    /// Schedule a message for injection at absolute time `at_ps`
    /// (picoseconds, must not be in the simulator's past). The route must be
    /// valid for `(src, dst)` on this topology.
    ///
    /// Messages with `src == dst` complete instantaneously at `at_ps`
    /// (local copies never enter the network).
    ///
    /// # Panics
    /// Panics if `bytes == 0`, if `at_ps` lies in the past, or if the route
    /// is invalid for the pair.
    pub fn schedule_message(
        &mut self,
        at_ps: u64,
        src: usize,
        dst: usize,
        bytes: u64,
        route: Route,
    ) -> MessageId {
        if src == dst {
            return self.schedule_on_channels(at_ps, src, dst, bytes, &[]);
        }
        self.xgft
            .validate_route(src, dst, &route)
            .expect("scheduled messages must carry a valid route");
        let path = self
            .xgft
            .route_channels(src, dst, &route)
            .expect("valid route expands to a path");
        let path: Vec<u32> = path.into_iter().map(|c| c as u32).collect();
        self.schedule_on_channels(at_ps, src, dst, bytes, &path)
    }

    /// Schedule a message whose dense channel path has been precomputed by a
    /// `xgft_core::CompiledRouteTable`-style build step — the hot injection
    /// entry: no route validation, no label arithmetic, just one copy of the
    /// path into the slab's shared arena. The path must come from
    /// `Xgft::route_channels` for `(src, dst)` on this topology (debug builds
    /// check the channel indices are in range).
    ///
    /// # Panics
    /// Panics if `bytes == 0`, if `at_ps` lies in the past, or if a non-empty
    /// path is supplied for `src == dst` (or an empty one for `src != dst`).
    pub fn schedule_message_on_path(
        &mut self,
        at_ps: u64,
        src: usize,
        dst: usize,
        bytes: u64,
        path: &[u32],
    ) -> MessageId {
        assert!(
            (src == dst) == path.is_empty(),
            "path length must match the pair: {} hops for ({src}, {dst})",
            path.len()
        );
        let num_channels = self.channels.len();
        debug_assert!(
            path.iter().all(|&c| (c as usize) < num_channels),
            "path contains out-of-range channel indices"
        );
        self.schedule_on_channels(at_ps, src, dst, bytes, path)
    }

    /// Admit a whole pre-lowered [`InjectionBatch`] in ascending-`at_ps`
    /// order (stable for ties) and return the per-entry ids *in the batch's
    /// push order*. Bit-identical to calling
    /// [`NetworkSim::schedule_message_on_path`] yourself in that time order:
    /// same slab slots, same event sequence numbers, same report — batching
    /// saves the per-call route lowering, not determinism.
    ///
    /// # Panics
    /// Panics under the same conditions as `schedule_message_on_path` for
    /// any entry.
    pub fn schedule_batch(&mut self, batch: &InjectionBatch) -> Vec<MessageId> {
        let order = batch.time_order();
        let mut ids = vec![MessageId(0); batch.len()];
        for &i in &order {
            let i = i as usize;
            let e = batch.entry(i);
            ids[i] = self.schedule_message_on_path(
                e.at_ps,
                e.src as usize,
                e.dst as usize,
                e.bytes,
                batch.path(i),
            );
        }
        xgft_obs::global()
            .counter("netsim.batch_messages")
            .add(batch.len() as u64);
        ids
    }

    /// Common scheduling tail shared by the route, precompiled-path and
    /// batch entry points. An empty path means a local copy (`src == dst`).
    fn schedule_on_channels(
        &mut self,
        at_ps: u64,
        src: usize,
        dst: usize,
        bytes: u64,
        path: &[u32],
    ) -> MessageId {
        assert!(bytes > 0, "messages must carry at least one byte");
        assert!(
            at_ps >= self.now_ps,
            "cannot schedule a message in the past ({} < {})",
            at_ps,
            self.now_ps
        );

        if path.is_empty() {
            // Local copy: completes immediately without entering the network.
            let id = self
                .messages
                .alloc(src, dst, bytes, at_ps, 0, &[], Some(at_ps));
            self.completions.push_back(Completion {
                id,
                src,
                dst,
                bytes,
                completed_at_ps: at_ps,
            });
            self.records.push(MessageRecord {
                id,
                src,
                dst,
                bytes,
                injected_at_ps: at_ps,
                completed_at_ps: at_ps,
            });
            return id;
        }

        let total_segments = self.config.num_segments(bytes);
        let id = self
            .messages
            .alloc(src, dst, bytes, at_ps, total_segments, path, None);
        self.adapters[src].active.push_back(id);
        self.queue
            .push(at_ps, Event::AdapterTryInject { src: src as u32 });
        id
    }

    /// Process events until the next message completes; returns `None` when
    /// the event queue drains without producing a completion.
    pub fn run_until_next_completion(&mut self) -> Option<Completion> {
        loop {
            if let Some(c) = self.completions.pop_front() {
                return Some(c);
            }
            if !self.step() {
                return self.completions.pop_front();
            }
        }
    }

    /// Run until every scheduled message has been delivered and produce the
    /// final report.
    pub fn run_to_completion(&mut self) -> SimReport {
        xgft_obs::span!("netsim.run");
        let events_before = self.events_processed;
        let records_before = self.records.len();
        let dropped_before = self.dropped_messages;
        while self.step() {}
        self.completions.clear();
        let report = self.report();
        // Bulk-record this run's deltas after the event loop (never inside
        // it): repeated runs on one simulator only count new work.
        let metrics = xgft_obs::global();
        metrics
            .counter("netsim.events")
            .add(self.events_processed - events_before);
        metrics
            .counter("netsim.delivered")
            .add((self.records.len() - records_before) as u64);
        metrics
            .counter("netsim.dropped")
            .add((self.dropped_messages - dropped_before) as u64);
        metrics
            .gauge("netsim.queue_depth")
            .set_max(report.max_queue_depth as u64);
        metrics
            .gauge("netsim.event_queue_hwm")
            .set_max(report.event_queue_hwm as u64);
        let latency = metrics.histogram("netsim.delivery_latency_ps");
        for record in &self.records[records_before..] {
            latency.record(record.latency_ps());
        }
        report
    }

    /// Accumulated busy (transmitting) time of every directed channel so
    /// far, indexed by the dense channel index of
    /// [`xgft_topo::ChannelTable`]. With equal-sized messages a channel's
    /// busy time is exactly proportional to the number of flows serialized
    /// through it, which is what the `xgft-flow` analytical model predicts —
    /// the cross-validation hooks compare the two shapes directly.
    pub fn channel_busy_ps(&self) -> Vec<u64> {
        self.channels.iter().map(|c| c.busy_ps).collect()
    }

    /// Produce a report of what has been delivered so far.
    pub fn report(&self) -> SimReport {
        let makespan = self
            .records
            .iter()
            .map(|r| r.completed_at_ps)
            .max()
            .unwrap_or(0);
        let max_queue_depth = self.channels.iter().map(|c| c.max_queue).max().unwrap_or(0);
        let max_busy = self.channels.iter().map(|c| c.busy_ps).max().unwrap_or(0);
        SimReport {
            completed_messages: self.records.len(),
            dropped_messages: self.dropped_messages,
            total_bytes: self.records.iter().map(|r| r.bytes).sum(),
            makespan_ps: makespan,
            messages: self.records.clone(),
            max_queue_depth,
            max_channel_utilization: if makespan == 0 {
                0.0
            } else {
                max_busy as f64 / makespan as f64
            },
            events_processed: self.events_processed,
            event_queue_hwm: self.queue.high_water(),
        }
    }

    /// Process a single event. Returns false when the queue is empty.
    fn step(&mut self) -> bool {
        let Some((time, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(time >= self.now_ps, "event time must not go backwards");
        self.now_ps = time;
        self.events_processed += 1;
        match event {
            Event::AdapterTryInject { src } => self.adapter_try_inject(src as usize),
            Event::SegmentArrived { segment, channel } => {
                self.segment_arrived(segment, channel as usize)
            }
            Event::SegmentReadyForNextHop { segment } => self.segment_ready(segment),
            Event::CreditReturn { channel } => {
                self.channels[channel as usize].credits += 1;
                self.try_start(channel as usize);
            }
            Event::ChannelFail { channel, policy } => self.channel_fail(channel as usize, policy),
            Event::ChannelRepair { channel } => self.channel_repair(channel as usize),
        }
        true
    }

    /// The channel dies now. Under [`FailurePolicy::Drop`] its waiting
    /// queue is flushed immediately; under
    /// [`FailurePolicy::CompleteInFlight`] queued segments (necessarily from
    /// pre-failure messages) keep draining.
    fn channel_fail(&mut self, channel: usize, policy: FailurePolicy) {
        let state = &mut self.channels[channel];
        if state.failed.is_some() {
            return; // idempotent: the first failure wins
        }
        state.failed = Some((self.now_ps, policy));
        if xgft_obs::trace_enabled() {
            xgft_obs::trace(
                "channel_failed",
                &[
                    ("channel", channel.into()),
                    ("at_ps", self.now_ps.into()),
                    ("policy", format!("{policy:?}").into()),
                ],
            );
        }
        if policy == FailurePolicy::Drop {
            let flushed: Vec<Segment> = self.channels[channel].waiting.drain(..).collect();
            for segment in flushed {
                self.drop_segment(segment);
            }
        }
    }

    /// The channel returns to service now. Idempotent — repairing a live
    /// channel is a no-op. The waiting queue can only hold segments the
    /// failure policy lets drain, so a poke of `try_start` resumes them and
    /// nothing else needs fixing up.
    fn channel_repair(&mut self, channel: usize) {
        let state = &mut self.channels[channel];
        if state.failed.is_none() {
            return;
        }
        state.failed = None;
        if xgft_obs::trace_enabled() {
            xgft_obs::trace(
                "channel_repaired",
                &[("channel", channel.into()), ("at_ps", self.now_ps.into())],
            );
        }
        self.try_start(channel);
    }

    /// Lose `segment` at a dead channel: return the buffer credit it holds,
    /// let its source adapter move on, mark its message dropped and stop
    /// injecting the message's remaining segments.
    fn drop_segment(&mut self, segment: Segment) {
        if let Some(prev) = segment.holds_buffer_of() {
            self.queue.push(
                self.now_ps,
                Event::CreditReturn {
                    channel: prev as u32,
                },
            );
        }
        let id = segment.message;
        let slot = id.slot();
        let now_ps = self.now_ps;
        let first_drop = self.messages.mark_dropped(slot, now_ps);
        let src = self.messages.src(slot);
        if segment.hop == 0 {
            // The segment sat in the injection queue; free the adapter's
            // round-robin slot so its other messages keep flowing.
            self.adapters[src].segment_enqueued = false;
            self.queue
                .push(now_ps, Event::AdapterTryInject { src: src as u32 });
        }
        if first_drop {
            self.dropped_messages += 1;
            self.adapters[src].active.retain(|&m| m != id);
        }
    }

    /// Hand the next segment (round-robin over active messages) of adapter
    /// `src` to its injection channel.
    ///
    /// A message scheduled for a future `at_ps` sits in the active set from
    /// scheduling time but is not *eligible* until the simulation clock
    /// reaches its injection time — its own `AdapterTryInject` event pokes
    /// the adapter then. Skipped messages keep their queue position, so the
    /// round-robin order among eligible messages never depends on when
    /// future traffic was announced.
    fn adapter_try_inject(&mut self, src: usize) {
        if self.adapters[src].segment_enqueued {
            return;
        }
        let now_ps = self.now_ps;
        let Some(eligible) = self.adapters[src]
            .active
            .iter()
            .position(|&m| self.messages.injected_at_ps(m.slot()) <= now_ps)
        else {
            return;
        };
        let id = self.adapters[src]
            .active
            .remove(eligible)
            .expect("in range");
        let slot = id.slot();
        debug_assert!(self.messages.id_is_current(id));
        let index = self.messages.next_segment_index(slot);
        let bytes = self.config.segment_size(self.messages.bytes(slot), index);
        let segment = Segment::new(id, index, bytes, 0);
        let injection_channel = self.messages.path_channel(slot, 0);
        if !self.messages.fully_injected(slot) {
            // Round-robin: this message goes to the back of the adapter queue.
            self.adapters[src].active.push_back(id);
        }
        self.adapters[src].segment_enqueued = true;
        self.enqueue_segment(segment, injection_channel);
    }

    /// Queue a segment at the upstream side of `channel` and poke the
    /// channel. Segments meeting a failed channel are dropped unless the
    /// policy lets pre-failure messages drain.
    fn enqueue_segment(&mut self, segment: Segment, channel: usize) {
        if let Some((failed_at, policy)) = self.channels[channel].failed {
            let drains = policy == FailurePolicy::CompleteInFlight
                && self.messages.injected_at_ps(segment.message.slot()) < failed_at;
            if !drains {
                self.drop_segment(segment);
                return;
            }
        }
        let ch = &mut self.channels[channel];
        if ch.credits > 0 && ch.waiting.is_empty() {
            // Fast path: the segment would be pushed and immediately popped
            // by `try_start` — skip the queue round-trip. Accounting is
            // identical: the pass-through segment still registers as a
            // momentary queue depth of one.
            ch.credits -= 1;
            ch.max_queue = ch.max_queue.max(1);
            self.start_transmission(segment, channel);
            return;
        }
        ch.waiting.push_back(segment);
        ch.max_queue = ch.max_queue.max(ch.waiting.len());
        self.try_start(channel);
    }

    /// Start as many waiting transmissions on `channel` as credits allow.
    fn try_start(&mut self, channel: usize) {
        loop {
            let segment = {
                let ch = &mut self.channels[channel];
                if ch.waiting.is_empty() || ch.credits == 0 {
                    return;
                }
                ch.credits -= 1;
                ch.waiting.pop_front().expect("non-empty")
            };
            self.start_transmission(segment, channel);
        }
    }

    /// Put `segment` on the wire of `channel`: the caller has already taken
    /// a credit for it.
    fn start_transmission(&mut self, segment: Segment, channel: usize) {
        let serialization = self.serialization(segment.bytes as u64);
        let (start, finish) = {
            let ch = &mut self.channels[channel];
            let start = self.now_ps.max(ch.free_at_ps);
            let finish = start + serialization;
            ch.free_at_ps = finish;
            ch.busy_ps += serialization;
            (start, finish)
        };

        // The slot the segment held on its previous channel frees when it
        // starts moving onto this one.
        if let Some(prev) = segment.holds_buffer_of() {
            self.queue.push(
                start,
                Event::CreditReturn {
                    channel: prev as u32,
                },
            );
        }
        // The source adapter can decide its next round-robin segment as
        // soon as this one starts occupying the injection link.
        if segment.hop == 0 {
            let src = self.messages.src(segment.message.slot());
            self.adapters[src].segment_enqueued = false;
            self.queue
                .push(start, Event::AdapterTryInject { src: src as u32 });
        }

        let is_last_hop =
            segment.hop as usize + 1 == self.messages.path_hops(segment.message.slot());
        let mut moved = segment;
        moved.set_holds_buffer_of(channel);

        if is_last_hop {
            self.queue.push(
                finish,
                Event::SegmentArrived {
                    segment: moved,
                    channel: channel as u32,
                },
            );
        } else {
            moved.hop += 1;
            let eligible = match self.config.switching {
                SwitchingMode::StoreAndForward => finish + self.switch_ps,
                SwitchingMode::CutThrough => start + self.flit_ps + self.switch_ps,
            };
            self.queue
                .push(eligible, Event::SegmentReadyForNextHop { segment: moved });
        }
    }

    /// A segment has crossed its switch and is ready for the next channel of
    /// its path.
    fn segment_ready(&mut self, segment: Segment) {
        let next_channel = self
            .messages
            .path_channel(segment.message.slot(), segment.hop as usize);
        self.enqueue_segment(segment, next_channel);
    }

    /// A segment has fully arrived at the destination adapter.
    fn segment_arrived(&mut self, segment: Segment, channel: usize) {
        // The destination adapter drains its ejection buffer immediately.
        self.queue.push(
            self.now_ps,
            Event::CreditReturn {
                channel: channel as u32,
            },
        );
        let slot = segment.message.slot();
        let now_ps = self.now_ps;
        let last = self.messages.deliver_segment(slot);
        if last && self.messages.dropped_at(slot).is_none() {
            self.messages.set_completed(slot, now_ps);
            let (src, dst) = (self.messages.src(slot), self.messages.dst(slot));
            let bytes = self.messages.bytes(slot);
            let injected_at_ps = self.messages.injected_at_ps(slot);
            self.completions.push_back(Completion {
                id: segment.message,
                src,
                dst,
                bytes,
                completed_at_ps: now_ps,
            });
            self.records.push(MessageRecord {
                id: segment.message,
                src,
                dst,
                bytes,
                injected_at_ps,
                completed_at_ps: now_ps,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xgft_topo::XgftSpec;

    fn k_ary(k: usize, n: usize) -> Xgft {
        Xgft::new(XgftSpec::k_ary_n_tree(k, n)).unwrap()
    }

    fn cfg() -> NetworkConfig {
        NetworkConfig::default()
    }

    /// A single uncontended message: completion time is the serialization of
    /// all segments plus per-hop pipeline fill.
    #[test]
    fn single_message_latency_matches_hand_computation() {
        let xgft = k_ary(4, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        let bytes = 8 * 1024u64; // 8 segments
        sim.schedule_message(0, 0, 5, bytes, Route::new(vec![0, 1]));
        let report = sim.run_to_completion();
        assert_eq!(report.completed_messages, 1);
        let seg = cfg().segment_serialization_ps();
        let hops = 4u64;
        let expected = 8 * seg + (hops - 1) * (seg + cfg().switch_latency_ps());
        assert_eq!(report.makespan_ps, expected);
    }

    #[test]
    fn same_leaf_messages_complete_instantly() {
        let xgft = k_ary(2, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        let id = sim.schedule_message(500, 3, 3, 1024, Route::empty());
        let c = sim.run_until_next_completion().unwrap();
        assert_eq!(c.id, id);
        assert_eq!(c.completed_at_ps, 500);
    }

    /// A message scheduled for a future `at_ps` while its source adapter is
    /// still draining earlier traffic must not inject before its scheduled
    /// time: announcing future traffic never perturbs the present, and the
    /// future message starts exactly at `at_ps` once the adapter is idle.
    #[test]
    fn future_scheduled_message_waits_for_its_injection_time() {
        let xgft = k_ary(4, 2);
        let bytes = 64 * 1024u64;

        let mut solo = NetworkSim::new(&xgft, cfg());
        solo.schedule_message(0, 0, 5, bytes, Route::new(vec![0, 1]));
        let solo_report = solo.run_to_completion();
        let solo_latency = solo_report.messages[0].latency_ps();

        let late_at = 10 * solo_report.makespan_ps;
        let mut sim = NetworkSim::new(&xgft, cfg());
        sim.schedule_message(0, 0, 5, bytes, Route::new(vec![0, 1]));
        let late = sim.schedule_message(late_at, 0, 5, bytes, Route::new(vec![0, 1]));
        let report = sim.run_to_completion();

        assert_eq!(report.completed_messages, 2);
        let first = &report.messages[0];
        assert_eq!(first.completed_at_ps, solo_report.makespan_ps);
        let record = report.messages.iter().find(|r| r.id == late).unwrap();
        assert_eq!(record.injected_at_ps, late_at);
        assert!(
            record.completed_at_ps >= late_at,
            "late message completed at {} before its injection time {late_at}",
            record.completed_at_ps
        );
        // Uncontended by then, so it prices exactly like the solo message.
        assert_eq!(record.latency_ps(), solo_latency);
    }

    #[test]
    fn ejection_link_serializes_two_senders() {
        // Two sources send to the same destination: the shared ejection link
        // roughly doubles the completion time of the later message.
        let xgft = k_ary(4, 2);
        let bytes = 64 * 1024u64;
        let mut sim = NetworkSim::new(&xgft, cfg());
        sim.schedule_message(0, 0, 5, bytes, Route::new(vec![0, 0]));
        sim.schedule_message(0, 1, 5, bytes, Route::new(vec![0, 1]));
        let contended = sim.run_to_completion();

        let mut solo = NetworkSim::new(&xgft, cfg());
        solo.schedule_message(0, 0, 5, bytes, Route::new(vec![0, 0]));
        let solo_report = solo.run_to_completion();

        let ratio = contended.makespan_ps as f64 / solo_report.makespan_ps as f64;
        assert!(
            ratio > 1.8 && ratio < 2.2,
            "expected ~2x slowdown from endpoint contention, got {ratio:.2}"
        );
    }

    #[test]
    fn shared_up_link_serializes_two_flows_with_same_root() {
        // Two sources in the same switch send to different destinations in
        // another switch but are routed through the same root: the shared
        // switch->root link halves their bandwidth.
        let xgft = k_ary(4, 2);
        let bytes = 64 * 1024u64;
        let mut shared = NetworkSim::new(&xgft, cfg());
        shared.schedule_message(0, 0, 4, bytes, Route::new(vec![0, 2]));
        shared.schedule_message(0, 1, 5, bytes, Route::new(vec![0, 2]));
        let shared_report = shared.run_to_completion();

        let mut disjoint = NetworkSim::new(&xgft, cfg());
        disjoint.schedule_message(0, 0, 4, bytes, Route::new(vec![0, 2]));
        disjoint.schedule_message(0, 1, 5, bytes, Route::new(vec![0, 3]));
        let disjoint_report = disjoint.run_to_completion();

        let ratio = shared_report.makespan_ps as f64 / disjoint_report.makespan_ps as f64;
        assert!(
            ratio > 1.7,
            "routing contention should slow the shared-root case, got {ratio:.2}"
        );
    }

    #[test]
    fn adapter_round_robin_interleaves_two_messages_fairly() {
        // One source sends to two destinations simultaneously; round-robin
        // interleaving means both finish at roughly the same time (rather
        // than one completing at half the time of the other).
        let xgft = k_ary(4, 2);
        let bytes = 128 * 1024u64;
        let mut sim = NetworkSim::new(&xgft, cfg());
        let a = sim.schedule_message(0, 0, 4, bytes, Route::new(vec![0, 0]));
        let b = sim.schedule_message(0, 0, 8, bytes, Route::new(vec![0, 1]));
        let report = sim.run_to_completion();
        let ta = report
            .messages
            .iter()
            .find(|m| m.id == a)
            .unwrap()
            .completed_at_ps;
        let tb = report
            .messages
            .iter()
            .find(|m| m.id == b)
            .unwrap()
            .completed_at_ps;
        let diff = ta.abs_diff(tb) as f64;
        let span = ta.max(tb) as f64;
        assert!(
            diff / span < 0.02,
            "round-robin should finish both messages nearly together: {ta} vs {tb}"
        );
    }

    #[test]
    fn determinism_same_inputs_same_report() {
        let xgft = k_ary(4, 2);
        let run = || {
            let mut sim = NetworkSim::new(&xgft, cfg());
            for s in 0..8usize {
                sim.schedule_message(
                    (s as u64) * 1000,
                    s,
                    (s + 4) % 16,
                    32 * 1024,
                    Route::new(vec![0, s % 4]),
                );
            }
            sim.run_to_completion()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn run_until_next_completion_streams_in_time_order() {
        let xgft = k_ary(4, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        sim.schedule_message(0, 0, 4, 16 * 1024, Route::new(vec![0, 0]));
        sim.schedule_message(0, 1, 5, 64 * 1024, Route::new(vec![0, 1]));
        sim.schedule_message(0, 2, 6, 32 * 1024, Route::new(vec![0, 2]));
        let mut times = vec![];
        while let Some(c) = sim.run_until_next_completion() {
            times.push(c.completed_at_ps);
        }
        assert_eq!(times.len(), 3);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert!(sim.is_idle());
    }

    #[test]
    fn cut_through_is_not_slower_than_store_and_forward() {
        let xgft = k_ary(4, 3);
        let bytes = 16 * 1024u64;
        let mut saf = NetworkSim::new(&xgft, cfg());
        saf.schedule_message(0, 0, 63, bytes, Route::new(vec![0, 1, 2]));
        let saf_report = saf.run_to_completion();

        let ct_cfg = NetworkConfig {
            switching: SwitchingMode::CutThrough,
            ..cfg()
        };
        let mut ct = NetworkSim::new(&xgft, ct_cfg);
        ct.schedule_message(0, 0, 63, bytes, Route::new(vec![0, 1, 2]));
        let ct_report = ct.run_to_completion();
        assert!(ct_report.makespan_ps <= saf_report.makespan_ps);
        assert!(ct_report.makespan_ps > 0);
    }

    #[test]
    fn report_statistics_are_populated() {
        let xgft = k_ary(4, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        sim.schedule_message(0, 0, 5, 8 * 1024, Route::new(vec![0, 1]));
        sim.schedule_message(0, 1, 5, 8 * 1024, Route::new(vec![0, 2]));
        let report = sim.run_to_completion();
        assert_eq!(report.completed_messages, 2);
        assert_eq!(report.total_bytes, 16 * 1024);
        assert!(report.max_channel_utilization > 0.0);
        assert!(report.max_channel_utilization <= 1.0);
        assert!(report.events_processed > 0);
        assert!(report.max_queue_depth >= 1);
        assert!(report.event_queue_hwm >= 1);
        assert!(report.mean_latency_ps() > 0.0);
    }

    #[test]
    fn channel_busy_times_are_per_channel_and_flow_proportional() {
        // Two equal messages from distinct sources to the same destination:
        // the shared ejection channel accumulates exactly twice the busy
        // time of each exclusively-used channel.
        let xgft = k_ary(4, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        sim.schedule_message(0, 0, 5, 8 * 1024, Route::new(vec![0, 1]));
        sim.schedule_message(0, 1, 5, 8 * 1024, Route::new(vec![0, 2]));
        sim.run_to_completion();
        let busy = sim.channel_busy_ps();
        assert_eq!(busy.len(), xgft.channels().len());
        let shared = busy[xgft.channels().ejection_channel(5)];
        let exclusive = busy[xgft.channels().injection_channel(0)];
        assert!(exclusive > 0);
        assert_eq!(shared, 2 * exclusive);
        // Untouched channels stay at zero.
        assert_eq!(busy[xgft.channels().injection_channel(15)], 0);
    }

    #[test]
    fn precompiled_path_injection_matches_route_injection() {
        let xgft = k_ary(4, 2);
        let route = Route::new(vec![0, 2]);
        let path: Vec<u32> = xgft
            .route_channels(0, 9, &route)
            .unwrap()
            .into_iter()
            .map(|c| c as u32)
            .collect();

        let mut by_route = NetworkSim::new(&xgft, cfg());
        by_route.schedule_message(0, 0, 9, 32 * 1024, route);
        let a = by_route.run_to_completion();

        let mut by_path = NetworkSim::new(&xgft, cfg());
        by_path.schedule_message_on_path(0, 0, 9, 32 * 1024, &path);
        let b = by_path.run_to_completion();
        assert_eq!(a, b);

        // Local copies go through the same entry with an empty path.
        let mut local = NetworkSim::new(&xgft, cfg());
        let id = local.schedule_message_on_path(100, 3, 3, 1024, &[]);
        let c = local.run_until_next_completion().unwrap();
        assert_eq!(c.id, id);
        assert_eq!(c.completed_at_ps, 100);
    }

    /// The batch entry is a pure re-ordering shim over
    /// `schedule_message_on_path`: same ids, same report, even when the
    /// entries are pushed out of time order.
    #[test]
    fn batched_injection_matches_per_message_injection_exactly() {
        let xgft = k_ary(4, 2);
        let flows: Vec<(u64, usize, usize)> = vec![
            (2_000, 0, 5),
            (0, 1, 6),
            (2_000, 2, 7),
            (0, 3, 3), // local copy rides along
            (1_000, 8, 13),
        ];
        let path_of = |src: usize, dst: usize| -> Vec<u32> {
            if src == dst {
                return vec![];
            }
            xgft.route_channels(src, dst, &Route::new(vec![0, src % 4]))
                .unwrap()
                .into_iter()
                .map(|c| c as u32)
                .collect()
        };

        // Reference: schedule one at a time in ascending (at_ps, push) order.
        let mut by_hand = NetworkSim::new(&xgft, cfg());
        let mut order: Vec<usize> = (0..flows.len()).collect();
        order.sort_by_key(|&i| flows[i].0);
        let mut hand_ids = vec![MessageId(0); flows.len()];
        for &i in &order {
            let (at, src, dst) = flows[i];
            hand_ids[i] =
                by_hand.schedule_message_on_path(at, src, dst, 32 * 1024, &path_of(src, dst));
        }
        let a = by_hand.run_to_completion();

        let mut batched = NetworkSim::new(&xgft, cfg());
        let mut batch = InjectionBatch::new();
        for &(at, src, dst) in &flows {
            batch.push(at, src, dst, 32 * 1024, &path_of(src, dst));
        }
        let batch_ids = batched.schedule_batch(&batch);
        let b = batched.run_to_completion();

        assert_eq!(batch_ids, hand_ids, "ids come back in push order");
        assert_eq!(a, b, "batched injection must be bit-identical");
    }

    #[test]
    #[should_panic(expected = "path length must match the pair")]
    fn empty_path_for_distinct_pair_is_rejected() {
        let xgft = k_ary(4, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        sim.schedule_message_on_path(0, 0, 5, 1024, &[]);
    }

    #[test]
    fn message_slab_recycles_ids_across_drained_messages() {
        let xgft = k_ary(4, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        let a = sim.schedule_message(0, 0, 5, 8 * 1024, Route::new(vec![0, 1]));
        let b = sim.schedule_message(0, 1, 6, 8 * 1024, Route::new(vec![0, 2]));
        assert_eq!((a, b), (MessageId(0), MessageId(1)));
        assert_eq!(sim.num_messages(), 2);

        // Nothing can be drained while the completions are unconsumed.
        sim.run_to_completion();
        assert_eq!(sim.message_status(a), Some(MessageStatus::Delivered));

        // Both delivered and consumed (run_to_completion clears the queue):
        // draining frees both slots.
        assert_eq!(sim.drain_delivered(), 2);
        assert_eq!(sim.num_messages(), 0);
        assert_eq!(sim.message_status(a), None);
        assert_eq!(sim.message_status(b), None);

        // New messages recycle the freed slots (LIFO) under a bumped
        // generation, so the recycled ids are *distinct* from the drained
        // ones even though they share a slot.
        let c = sim.schedule_message(sim.now_ps(), 2, 7, 8 * 1024, Route::new(vec![0, 3]));
        assert_eq!((c.slot(), c.generation()), (1, 1), "slot 1 recycled");
        assert_ne!(c, b, "recycled id must not equal the drained id");
        let d = sim.schedule_message(sim.now_ps(), 3, 8, 8 * 1024, Route::new(vec![0, 0]));
        assert_eq!((d.slot(), d.generation()), (0, 1));
        let e = sim.schedule_message(sim.now_ps(), 4, 9, 8 * 1024, Route::new(vec![0, 1]));
        assert_eq!(e, MessageId(2), "fresh slot once the free list is empty");
        let report = sim.run_to_completion();
        assert_eq!(report.completed_messages, 5);
        assert_eq!(report.dropped_messages, 0);
        assert_eq!(sim.message_status(c), Some(MessageStatus::Delivered));
    }

    /// The satellite regression: a drained id must never alias the slot's
    /// next occupant, no matter what state that occupant is in.
    #[test]
    fn stale_ids_stay_dead_after_their_slot_is_recycled() {
        let xgft = k_ary(4, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        let stale = sim.schedule_message(0, 0, 5, 8 * 1024, Route::new(vec![0, 1]));
        sim.run_to_completion();
        assert_eq!(sim.drain_delivered(), 1);
        assert_eq!(sim.message_status(stale), None);

        // Recycle the slot with a live in-flight message: before the
        // generation tag, `stale` would now report the new occupant's
        // status (Pending), silently lying about a drained message.
        let fresh = sim.schedule_message(sim.now_ps(), 1, 6, 8 * 1024, Route::new(vec![0, 2]));
        assert_eq!(fresh.slot(), stale.slot(), "slot must be recycled");
        assert_eq!(sim.message_status(fresh), Some(MessageStatus::Pending));
        assert_eq!(
            sim.message_status(stale),
            None,
            "a drained id must not alias the live recycled message"
        );
        sim.run_to_completion();
        assert_eq!(sim.message_status(fresh), Some(MessageStatus::Delivered));
        assert_eq!(sim.message_status(stale), None);
    }

    #[test]
    fn channel_failure_drop_loses_messages_but_not_the_network() {
        // Two flows share nothing; kill a channel of the first mid-run.
        let xgft = k_ary(4, 2);
        let bytes = 64 * 1024u64;
        let mut sim = NetworkSim::new(&xgft, cfg());
        let doomed = sim.schedule_message(0, 0, 5, bytes, Route::new(vec![0, 1]));
        let survivor = sim.schedule_message(0, 8, 13, bytes, Route::new(vec![0, 2]));
        let dead = xgft.route_channels(0, 5, &Route::new(vec![0, 1])).unwrap()[1];
        sim.fail_channel(1_000_000, dead, FailurePolicy::Drop);
        let report = sim.run_to_completion();
        assert!(sim.channel_is_failed(dead));
        assert_eq!(report.completed_messages, 1);
        assert_eq!(report.dropped_messages, 1);
        assert_eq!(sim.dropped_messages(), 1);
        assert_eq!(sim.message_status(doomed), Some(MessageStatus::Dropped));
        assert_eq!(sim.message_status(survivor), Some(MessageStatus::Delivered));
        // Dropped messages are drainable and their ids stay dead.
        assert_eq!(sim.drain_delivered(), 2);
        assert_eq!(sim.message_status(doomed), None);
    }

    #[test]
    fn complete_in_flight_drains_pre_failure_messages() {
        let xgft = k_ary(4, 2);
        let bytes = 64 * 1024u64;
        let route = Route::new(vec![0, 1]);
        let dead = xgft.route_channels(0, 5, &route).unwrap()[1];

        // Message injected before the failure: drains to completion.
        let mut sim = NetworkSim::new(&xgft, cfg());
        let early = sim.schedule_message(0, 0, 5, bytes, route.clone());
        sim.fail_channel(1_000_000, dead, FailurePolicy::CompleteInFlight);
        let report = sim.run_to_completion();
        assert_eq!(report.completed_messages, 1);
        assert_eq!(report.dropped_messages, 0);
        assert_eq!(sim.message_status(early), Some(MessageStatus::Delivered));

        // Message injected after the failure over the same stale path:
        // dropped at the dead hop even under CompleteInFlight.
        let mut sim = NetworkSim::new(&xgft, cfg());
        sim.fail_channel(0, dead, FailurePolicy::CompleteInFlight);
        let late = sim.schedule_message(1_000, 0, 5, bytes, route);
        let report = sim.run_to_completion();
        assert_eq!(report.completed_messages, 0);
        assert_eq!(report.dropped_messages, 1);
        assert_eq!(sim.message_status(late), Some(MessageStatus::Dropped));
    }

    #[test]
    fn fail_repair_inject_delivers_with_pristine_latency() {
        let xgft = k_ary(4, 2);
        let bytes = 64 * 1024u64;
        let route = Route::new(vec![0, 1]);
        let dead = xgft.route_channels(0, 5, &route).unwrap()[1];

        // Reference: an undisturbed sim delivers the same message injected
        // at the same instant.
        let mut pristine = NetworkSim::new(&xgft, cfg());
        let reference = pristine.schedule_message(20_000_000, 0, 5, bytes, route.clone());
        let reference_report = pristine.run_to_completion();
        let reference_ps = reference_report
            .messages
            .iter()
            .find(|r| r.id == reference)
            .unwrap()
            .completed_at_ps;

        // Fail, lose a message at the dead channel, repair, inject again.
        // The doomed message comes from a sibling leaf (same switch, same
        // dead up-channel, different adapter) so the healed message's
        // round-robin slot stays untouched until its own injection time.
        let mut sim = NetworkSim::new(&xgft, cfg());
        sim.fail_channel(100, dead, FailurePolicy::Drop);
        let doomed = sim.schedule_message(200, 1, 5, bytes, route.clone());
        sim.repair_channel(10_000_000, dead);
        let healed = sim.schedule_message(20_000_000, 0, 5, bytes, route);
        let report = sim.run_to_completion();
        assert!(!sim.channel_is_failed(dead));
        assert_eq!(report.completed_messages, 1);
        assert_eq!(report.dropped_messages, 1);
        assert_eq!(sim.message_status(doomed), Some(MessageStatus::Dropped));
        assert_eq!(sim.message_status(healed), Some(MessageStatus::Delivered));
        let healed_ps = report
            .messages
            .iter()
            .find(|r| r.id == healed)
            .unwrap()
            .completed_at_ps;
        assert_eq!(
            healed_ps, reference_ps,
            "a repaired channel must serve fresh traffic at pristine latency"
        );

        // Repairing a live channel is a no-op, not a state change.
        sim.repair_channel(sim.now_ps(), dead);
        sim.run_to_completion();
        assert!(!sim.channel_is_failed(dead));
    }

    #[test]
    fn drop_at_a_shared_channel_releases_credits_for_other_flows() {
        // Many flows fan into one destination; the ejection link dies with
        // Drop policy. Everything queued or arriving later is lost, but the
        // simulation terminates and every credit comes back (no wedged
        // channels, no live messages left unaccounted).
        let xgft = k_ary(4, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        for s in 1..8usize {
            let route = if xgft.nca_level(s, 0) == 1 {
                Route::new(vec![0])
            } else {
                Route::new(vec![0, s % 4])
            };
            sim.schedule_message(0, s, 0, 64 * 1024, route);
        }
        let ejection = xgft.channels().ejection_channel(0);
        sim.fail_channel(500_000, ejection, FailurePolicy::Drop);
        let report = sim.run_to_completion();
        assert_eq!(report.completed_messages + report.dropped_messages, 7);
        assert!(
            report.dropped_messages >= 1,
            "the dead ejection link must bite"
        );
        assert!(sim.is_idle());
    }

    #[test]
    #[should_panic(expected = "channel index out of range")]
    fn failing_an_unknown_channel_is_rejected() {
        let xgft = k_ary(2, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        sim.fail_channel(0, 10_000, FailurePolicy::Drop);
    }

    #[test]
    fn drain_skips_messages_with_unconsumed_completions() {
        let xgft = k_ary(4, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        // A local copy completes instantly but its completion is never
        // consumed, so it must survive a drain; the consumed one drains.
        let kept = sim.schedule_message(0, 2, 2, 1024, Route::empty());
        let a = sim.schedule_message(0, 0, 5, 8 * 1024, Route::new(vec![0, 1]));
        let first = sim.run_until_next_completion().unwrap();
        assert_eq!(first.id, kept, "local copies complete first");
        let second = sim.run_until_next_completion().unwrap();
        assert_eq!(second.id, a);
        // Re-schedule another unconsumed local copy, then drain.
        let pending = sim.schedule_message(sim.now_ps(), 3, 3, 1024, Route::empty());
        let drained = sim.drain_delivered();
        assert_eq!(drained, 2, "kept + a were consumed; pending was not");
        assert_eq!(sim.message_status(a), None);
        assert!(
            sim.message_status(pending).is_some(),
            "a message with an unconsumed completion must not be drained"
        );
    }

    #[test]
    #[should_panic(expected = "valid route")]
    fn invalid_route_is_rejected() {
        let xgft = k_ary(4, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        sim.schedule_message(0, 0, 5, 1024, Route::new(vec![0]));
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_message_is_rejected() {
        let xgft = k_ary(4, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        sim.schedule_message(0, 0, 5, 0, Route::new(vec![0, 1]));
    }

    #[test]
    fn backpressure_bounds_queue_depth() {
        // Sixteen sources all send to one destination; finite credits mean no
        // waiting queue grows beyond (credits + senders) segments.
        let xgft = k_ary(4, 2);
        let mut sim = NetworkSim::new(&xgft, cfg());
        for s in 1..16usize {
            let route = Route::new(vec![0, s % 4]);
            let level = xgft.nca_level(s, 0);
            let route = if level == 1 {
                Route::new(vec![0])
            } else {
                route
            };
            sim.schedule_message(0, s, 0, 64 * 1024, route);
        }
        let report = sim.run_to_completion();
        assert_eq!(report.completed_messages, 15);
        // The ejection channel's waiting queue is fed only by buffered
        // segments still holding upstream credits: 4 root->switch channels
        // and 3 local injection channels, 4 credits each, so at most 28
        // segments can ever wait there (without credits the queue would grow
        // to the hundreds).
        assert!(
            report.max_queue_depth <= 28,
            "queue depth {} suggests missing backpressure",
            report.max_queue_depth
        );
    }

    #[test]
    fn reset_is_byte_identical_to_a_fresh_simulator() {
        // Drive a run with contention, failures and repairs, reset, rerun
        // the same schedule: reports (messages, ids, events, high-water)
        // must match a fresh simulator's bit for bit.
        let xgft = k_ary(4, 2);
        let drive = |sim: &mut NetworkSim| {
            let ids: Vec<MessageId> = (1..12usize)
                .map(|s| {
                    let route = if sim.xgft().nca_level(s, 0) == 1 {
                        Route::new(vec![0])
                    } else {
                        Route::new(vec![0, s % 4])
                    };
                    sim.schedule_message((s as u64) * 1_000, s, 0, 48 * 1024, route)
                })
                .collect();
            sim.fail_channel(2_000_000, 3, FailurePolicy::Drop);
            sim.repair_channel(60_000_000, 3);
            let report = sim.run_to_completion();
            (ids, report)
        };
        let mut fresh = NetworkSim::new(&xgft, cfg());
        let (fresh_ids, fresh_report) = drive(&mut fresh);

        let mut reused = NetworkSim::new(&xgft, cfg());
        // A first run leaves queue rings grown, slabs filled, channels
        // failed — everything reset() must reclaim.
        let _ = drive(&mut reused);
        reused.reset();
        assert_eq!(reused.now_ps(), 0);
        assert_eq!(reused.num_messages(), 0);
        let (reused_ids, reused_report) = drive(&mut reused);
        assert_eq!(fresh_ids, reused_ids, "minted ids must restart identically");
        assert_eq!(fresh_report, reused_report);
    }
}
