//! Fault sets and the degraded-topology view.
//!
//! The paper evaluates its oblivious schemes on pristine XGFTs, but the
//! practical appeal of *fixed* route choices is that they must keep working
//! without reconfiguration when hardware dies. This module supplies the
//! substrate for that scenario family:
//!
//! * [`FaultSet`] — a validated set of failed directed channels, built by
//!   failing individual channels, whole cables (both directions) or whole
//!   switches (every incident cable), or drawn from one of the deterministic
//!   samplers (uniform link failure at rate `p`, random switch kills,
//!   targeted per-level cuts). Samplers follow the workspace's SplitMix64
//!   seed discipline: the outcome is a pure function of `(topology, seed)`,
//!   independent of iteration order or thread count. Sets compose over
//!   time: [`FaultSet::merge`] unions incident sets (the chaos timeline in
//!   `xgft-analysis` rebuilds each epoch's cumulative set from its active
//!   incidents), and [`FaultSet::repair_channel`] / [`FaultSet::repair_cable`]
//!   clear individual faults for in-place repair modelling.
//! * [`DegradedXgft`] — a borrowed view of an [`Xgft`] with the fault set's
//!   channels masked out. Routing layers query it to test whether a route
//!   survives and to enumerate the channels a path may still use.
//!
//! Level-0 cables (the injection/ejection links of the processing nodes) are
//! excluded by the *samplers* — in a `w_1 = 1` tree a dead adapter link
//! disconnects its leaf outright, which is a node failure, not a routing
//! problem — but can still be failed explicitly through
//! [`FaultSet::fail_cable`] when that scenario is wanted.

use crate::channel::{ChannelId, ChannelTable, Direction};
use crate::error::TopologyError;
use crate::topology::{NodeRef, Xgft};
use std::fmt;

/// SplitMix64 finaliser: the canonical mixing function of the workspace's
/// seed discipline. Every consumer — the fault samplers here, the campaign
/// and resilience seed streams in `xgft-analysis` — must use this one
/// implementation so the derived streams can never silently diverge.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Map a mixed 64-bit value to a uniform `f64` in `[0, 1)`.
fn unit_f64(z: u64) -> f64 {
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A set of failed directed channels of one topology, kept as a dense mask
/// over the [`ChannelTable`] numbering.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSet {
    /// `failed[dense]` is true when that directed channel is dead.
    failed: Vec<bool>,
    num_failed: usize,
    /// Switches killed through [`FaultSet::fail_switch`], for reporting.
    killed_switches: Vec<NodeRef>,
}

impl FaultSet {
    /// The empty fault set for a topology (every channel alive).
    pub fn none(xgft: &Xgft) -> Self {
        FaultSet {
            failed: vec![false; xgft.channels().len()],
            num_failed: 0,
            killed_switches: Vec::new(),
        }
    }

    /// Fail one directed channel. Idempotent.
    pub fn fail_channel(&mut self, channels: &ChannelTable, ch: &ChannelId) {
        let dense = channels.index(ch);
        if !self.failed[dense] {
            self.failed[dense] = true;
            self.num_failed += 1;
        }
    }

    /// Fail both directed channels of the cable with its low end at
    /// `(level, low_index)` and up-port `up_port`. Idempotent.
    pub fn fail_cable(
        &mut self,
        channels: &ChannelTable,
        level: usize,
        low_index: usize,
        up_port: usize,
    ) {
        for dir in [Direction::Up, Direction::Down] {
            self.fail_channel(
                channels,
                &ChannelId {
                    level,
                    low_index,
                    up_port,
                    dir,
                },
            );
        }
    }

    /// Repair one directed channel: the inverse of
    /// [`FaultSet::fail_channel`]. Idempotent — repairing a live channel is
    /// a no-op.
    pub fn repair_channel(&mut self, channels: &ChannelTable, ch: &ChannelId) {
        let dense = channels.index(ch);
        if self.failed[dense] {
            self.failed[dense] = false;
            self.num_failed -= 1;
        }
    }

    /// Repair both directed channels of the cable with its low end at
    /// `(level, low_index)` and up-port `up_port`. Idempotent.
    ///
    /// Note that repairing cable-by-cable does not undo the bookkeeping of
    /// [`FaultSet::fail_switch`] (`killed_switches` is a report of what was
    /// explicitly killed); timeline consumers that mix switch kills with
    /// repairs should rebuild the cumulative set from its still-active
    /// incidents with [`FaultSet::merge`] instead of repairing in place.
    pub fn repair_cable(
        &mut self,
        channels: &ChannelTable,
        level: usize,
        low_index: usize,
        up_port: usize,
    ) {
        for dir in [Direction::Up, Direction::Down] {
            self.repair_channel(
                channels,
                &ChannelId {
                    level,
                    low_index,
                    up_port,
                    dir,
                },
            );
        }
    }

    /// Union another fault set into this one (same topology required; the
    /// mask lengths must match). Killed-switch reports concatenate without
    /// deduplication — each merge records one incident.
    ///
    /// # Panics
    /// Panics when the two sets were built for different channel numberings.
    pub fn merge(&mut self, other: &FaultSet) {
        assert_eq!(
            self.failed.len(),
            other.failed.len(),
            "cannot merge fault sets of different topologies"
        );
        for (dense, &dead) in other.failed.iter().enumerate() {
            if dead && !self.failed[dense] {
                self.failed[dense] = true;
                self.num_failed += 1;
            }
        }
        self.killed_switches
            .extend_from_slice(&other.killed_switches);
    }

    /// Kill a whole switch: every cable incident to it (towards its parents
    /// and towards its children) fails in both directions.
    ///
    /// # Panics
    /// Panics if `node` is a leaf (level 0) or out of range.
    pub fn fail_switch(&mut self, xgft: &Xgft, node: NodeRef) {
        assert!(
            node.level >= 1 && node.level <= xgft.height(),
            "fail_switch needs a switch, got level {}",
            node.level
        );
        assert!(
            node.index < xgft.nodes_at_level(node.level),
            "switch index {} out of range at level {}",
            node.index,
            node.level
        );
        let spec = xgft.spec();
        let channels = xgft.channels();
        // Cables towards the parents (absent for root switches).
        if node.level < xgft.height() {
            for port in 0..spec.w(node.level + 1) {
                self.fail_cable(channels, node.level, node.index, port);
            }
        }
        // Cables towards the children: the child's up-port onto this switch
        // is the switch's own W digit at its level.
        let label = xgft.node_label(node).expect("validated switch");
        let up_port = label.digit(node.level);
        for child_port in 0..spec.m(node.level) {
            let child = xgft
                .child_of(node, child_port)
                .expect("child ports are in range");
            self.fail_cable(channels, node.level - 1, child.index, up_port);
        }
        self.killed_switches.push(node);
    }

    /// Uniform link failure: every switch-to-switch cable (low end at level
    /// ≥ 1) dies independently with probability `rate`, both directions.
    /// Deterministic in `(topology, rate, seed)` regardless of enumeration
    /// order.
    pub fn uniform_links(xgft: &Xgft, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "failure rate must be in [0,1]");
        let mut faults = FaultSet::none(xgft);
        let spec = xgft.spec();
        let channels = xgft.channels();
        let stream = splitmix64(seed ^ 0xfa17_fa17_fa17_fa17);
        for level in 1..xgft.height() {
            for low in 0..spec.nodes_at_level(level) {
                for port in 0..spec.w(level + 1) {
                    // Key each cable by its dense Up-channel index so the
                    // draw is a pure function of (seed, cable).
                    let key = channels.index(&ChannelId {
                        level,
                        low_index: low,
                        up_port: port,
                        dir: Direction::Up,
                    });
                    if unit_f64(splitmix64(stream ^ key as u64)) < rate {
                        faults.fail_cable(channels, level, low, port);
                    }
                }
            }
        }
        faults
    }

    /// Kill `count` distinct switches at `level`, chosen by a seeded partial
    /// Fisher–Yates shuffle.
    ///
    /// # Panics
    /// Panics if `level` is 0 or `count` exceeds the number of switches at
    /// that level.
    pub fn random_switch_kills(xgft: &Xgft, level: usize, count: usize, seed: u64) -> Self {
        assert!(level >= 1, "leaves cannot be killed as switches");
        let n = xgft.nodes_at_level(level);
        assert!(count <= n, "cannot kill {count} of {n} switches");
        let mut faults = FaultSet::none(xgft);
        let mut pool: Vec<usize> = (0..n).collect();
        let mut state = splitmix64(seed ^ 0x5717_c4e5_u64 ^ (level as u64) << 32);
        for i in 0..count {
            state = splitmix64(state);
            let j = i + (state % (n - i) as u64) as usize;
            pool.swap(i, j);
            faults.fail_switch(
                xgft,
                NodeRef {
                    level,
                    index: pool[i],
                },
            );
        }
        faults
    }

    /// Targeted per-level cut: fail `count` distinct cables whose low end is
    /// at `cable_level` (≥ 1), chosen by a seeded partial Fisher–Yates
    /// shuffle over that level's cables.
    ///
    /// # Panics
    /// Panics if `cable_level` is 0 or at/above the root level, or `count`
    /// exceeds the cables at that level.
    pub fn targeted_level_cut(xgft: &Xgft, cable_level: usize, count: usize, seed: u64) -> Self {
        assert!(
            cable_level >= 1 && cable_level < xgft.height(),
            "cable level {cable_level} has no switch-to-switch cables"
        );
        let channels = xgft.channels();
        let n = channels.cables_at_level(cable_level);
        assert!(count <= n, "cannot cut {count} of {n} cables");
        let w = xgft.spec().w(cable_level + 1);
        let mut faults = FaultSet::none(xgft);
        let mut pool: Vec<usize> = (0..n).collect();
        let mut state = splitmix64(seed ^ 0xc07_c07_u64 ^ (cable_level as u64) << 32);
        for i in 0..count {
            state = splitmix64(state);
            let j = i + (state % (n - i) as u64) as usize;
            pool.swap(i, j);
            let cable = pool[i];
            faults.fail_cable(channels, cable_level, cable / w, cable % w);
        }
        faults
    }

    /// True when the directed channel with dense index `dense` is dead.
    #[inline]
    pub fn is_failed(&self, dense: usize) -> bool {
        self.failed[dense]
    }

    /// Number of failed directed channels.
    pub fn num_failed_channels(&self) -> usize {
        self.num_failed
    }

    /// True when nothing has failed.
    pub fn is_empty(&self) -> bool {
        self.num_failed == 0
    }

    /// Number of channels of the topology this set was built for (the mask
    /// length — used to validate the set against a [`ChannelTable`]).
    pub fn channels_len(&self) -> usize {
        self.failed.len()
    }

    /// The switches killed through [`FaultSet::fail_switch`].
    pub fn killed_switches(&self) -> &[NodeRef] {
        &self.killed_switches
    }

    /// Iterate the dense indices of every failed channel, ascending.
    pub fn iter_failed(&self) -> impl Iterator<Item = usize> + '_ {
        self.failed
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| i)
    }

    /// Validate the set against a topology: the channel mask must have been
    /// built for the same channel numbering.
    pub fn validate(&self, xgft: &Xgft) -> Result<(), TopologyError> {
        if self.failed.len() != xgft.channels().len() {
            return Err(TopologyError::InvalidRoute {
                reason: format!(
                    "fault set covers {} channels but the topology has {}",
                    self.failed.len(),
                    xgft.channels().len()
                ),
            });
        }
        Ok(())
    }
}

impl fmt::Display for FaultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults[{} of {} channels, {} switches killed]",
            self.num_failed,
            self.failed.len(),
            self.killed_switches.len()
        )
    }
}

/// A borrowed degraded view of a topology: the wrapped [`Xgft`] with a
/// [`FaultSet`]'s channels masked out.
#[derive(Debug, Clone, Copy)]
pub struct DegradedXgft<'a> {
    xgft: &'a Xgft,
    faults: &'a FaultSet,
}

impl<'a> DegradedXgft<'a> {
    /// Pair a topology with a fault set (validated to match).
    pub fn new(xgft: &'a Xgft, faults: &'a FaultSet) -> Result<Self, TopologyError> {
        faults.validate(xgft)?;
        Ok(DegradedXgft { xgft, faults })
    }

    /// The underlying pristine topology.
    pub fn xgft(&self) -> &'a Xgft {
        self.xgft
    }

    /// The fault set masking this view.
    pub fn faults(&self) -> &'a FaultSet {
        self.faults
    }

    /// True when the channel with dense index `dense` is still alive.
    #[inline]
    pub fn channel_live(&self, dense: usize) -> bool {
        !self.faults.is_failed(dense)
    }

    /// True when every channel of the route's expanded path is alive.
    pub fn route_is_live(
        &self,
        s: usize,
        d: usize,
        route: &crate::route::Route,
    ) -> Result<bool, TopologyError> {
        let path = self.xgft.route_channels(s, d, route)?;
        Ok(path.iter().all(|&c| self.channel_live(c)))
    }

    /// The dense channel path of a route if every hop is alive, `None` when
    /// some hop is dead.
    pub fn live_route_channels(
        &self,
        s: usize,
        d: usize,
        route: &crate::route::Route,
    ) -> Result<Option<Vec<usize>>, TopologyError> {
        let path = self.xgft.route_channels(s, d, route)?;
        if path.iter().all(|&c| self.channel_live(c)) {
            Ok(Some(path))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Route;
    use crate::spec::XgftSpec;

    fn two_level(w2: usize) -> Xgft {
        Xgft::new(XgftSpec::slimmed_two_level(4, w2).unwrap()).unwrap()
    }

    #[test]
    fn empty_set_masks_nothing() {
        let x = two_level(4);
        let f = FaultSet::none(&x);
        assert!(f.is_empty());
        assert_eq!(f.num_failed_channels(), 0);
        assert_eq!(f.channels_len(), x.channels().len());
        assert_eq!(f.iter_failed().count(), 0);
        let view = DegradedXgft::new(&x, &f).unwrap();
        for dense in 0..x.channels().len() {
            assert!(view.channel_live(dense));
        }
    }

    #[test]
    fn fail_cable_kills_both_directions_idempotently() {
        let x = two_level(4);
        let mut f = FaultSet::none(&x);
        f.fail_cable(x.channels(), 1, 2, 3);
        assert_eq!(f.num_failed_channels(), 2);
        f.fail_cable(x.channels(), 1, 2, 3);
        assert_eq!(f.num_failed_channels(), 2);
        for dir in [Direction::Up, Direction::Down] {
            let dense = x.channels().index(&ChannelId {
                level: 1,
                low_index: 2,
                up_port: 3,
                dir,
            });
            assert!(f.is_failed(dense));
        }
        assert!(f.to_string().contains("2 of"));
    }

    #[test]
    fn repair_restores_channels_idempotently() {
        let x = two_level(4);
        let mut f = FaultSet::none(&x);
        f.fail_cable(x.channels(), 1, 2, 3);
        assert_eq!(f.num_failed_channels(), 2);
        f.repair_cable(x.channels(), 1, 2, 3);
        assert!(f.is_empty());
        // Repairing a live cable is a no-op, not an underflow.
        f.repair_cable(x.channels(), 1, 2, 3);
        assert!(f.is_empty());
        // One direction at a time works too.
        f.fail_cable(x.channels(), 1, 0, 1);
        f.repair_channel(
            x.channels(),
            &ChannelId {
                level: 1,
                low_index: 0,
                up_port: 1,
                dir: Direction::Up,
            },
        );
        assert_eq!(f.num_failed_channels(), 1);
        let down = x.channels().index(&ChannelId {
            level: 1,
            low_index: 0,
            up_port: 1,
            dir: Direction::Down,
        });
        assert!(f.is_failed(down));
    }

    #[test]
    fn merge_unions_overlapping_incidents() {
        let x = two_level(4);
        let mut a = FaultSet::none(&x);
        a.fail_cable(x.channels(), 1, 0, 0);
        a.fail_cable(x.channels(), 1, 1, 1);
        let mut b = FaultSet::none(&x);
        b.fail_cable(x.channels(), 1, 1, 1); // overlaps a
        b.fail_switch(&x, NodeRef { level: 2, index: 0 });
        let mut merged = a.clone();
        merged.merge(&b);
        // Root 0's kill covers cable (1,0,0) too, so a and b overlap on two
        // cables (4 directed channels), each counted once.
        assert_eq!(
            merged.num_failed_channels(),
            a.num_failed_channels() + b.num_failed_channels() - 4
        );
        assert_eq!(merged.killed_switches(), b.killed_switches());
        for dense in a.iter_failed().chain(b.iter_failed()) {
            assert!(merged.is_failed(dense));
        }
        // Merging is idempotent on the channel mask.
        let again = {
            let mut m = merged.clone();
            m.merge(&b);
            m
        };
        assert_eq!(again.num_failed_channels(), merged.num_failed_channels());
    }

    #[test]
    fn fail_switch_cuts_every_incident_cable() {
        // Kill root 1 of the full 4-ary 2-tree: 4 down cables, no up cables.
        let x = two_level(4);
        let mut f = FaultSet::none(&x);
        f.fail_switch(&x, NodeRef { level: 2, index: 1 });
        assert_eq!(f.num_failed_channels(), 2 * 4);
        assert_eq!(f.killed_switches(), &[NodeRef { level: 2, index: 1 }]);
        // Every failed channel is a level-1 cable with up_port pointing at
        // the dead root.
        for dense in f.iter_failed() {
            let ch = x.channels().channel(dense);
            assert_eq!(ch.level, 1);
        }

        // Kill a level-1 switch: 4 up cables + 4 leaf cables.
        let mut g = FaultSet::none(&x);
        g.fail_switch(&x, NodeRef { level: 1, index: 0 });
        assert_eq!(g.num_failed_channels(), 2 * (4 + 4));
    }

    #[test]
    fn uniform_links_is_seed_deterministic_and_leaves_level0_alone() {
        let x = Xgft::new(XgftSpec::new(vec![4, 4, 4], vec![1, 3, 2]).unwrap()).unwrap();
        let a = FaultSet::uniform_links(&x, 0.3, 7);
        let b = FaultSet::uniform_links(&x, 0.3, 7);
        let c = FaultSet::uniform_links(&x, 0.3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should draw different cuts");
        assert!(!a.is_empty());
        for dense in a.iter_failed() {
            assert!(x.channels().channel(dense).level >= 1);
        }
        // Rate 0 and 1 are exact.
        assert!(FaultSet::uniform_links(&x, 0.0, 1).is_empty());
        let all = FaultSet::uniform_links(&x, 1.0, 1);
        let switch_cables: usize = (1..x.height())
            .map(|l| x.channels().cables_at_level(l))
            .sum();
        assert_eq!(all.num_failed_channels(), 2 * switch_cables);
    }

    #[test]
    fn switch_kills_and_level_cuts_are_deterministic() {
        let x = two_level(4);
        let a = FaultSet::random_switch_kills(&x, 2, 2, 5);
        let b = FaultSet::random_switch_kills(&x, 2, 2, 5);
        assert_eq!(a, b);
        assert_eq!(a.killed_switches().len(), 2);
        let cut = FaultSet::targeted_level_cut(&x, 1, 3, 11);
        assert_eq!(cut.num_failed_channels(), 6);
        assert_eq!(cut, FaultSet::targeted_level_cut(&x, 1, 3, 11));
        assert_ne!(cut, FaultSet::targeted_level_cut(&x, 1, 3, 12));
    }

    #[test]
    fn degraded_view_detects_dead_routes() {
        let x = two_level(4);
        let mut f = FaultSet::none(&x);
        // Kill the cable from switch 0 up to root 2.
        f.fail_cable(x.channels(), 1, 0, 2);
        let view = DegradedXgft::new(&x, &f).unwrap();
        // A cross-switch route through root 2 from switch 0 is dead...
        assert!(!view.route_is_live(0, 5, &Route::new(vec![0, 2])).unwrap());
        assert!(view
            .live_route_channels(0, 5, &Route::new(vec![0, 2]))
            .unwrap()
            .is_none());
        // ...but root 3 still works.
        assert!(view.route_is_live(0, 5, &Route::new(vec![0, 3])).unwrap());
        let path = view
            .live_route_channels(0, 5, &Route::new(vec![0, 3]))
            .unwrap()
            .unwrap();
        assert_eq!(path.len(), 4);
        // The reverse pair through root 2 ascends over a healthy cable but
        // descends over the dead cable's Down channel (fail_cable kills
        // both directions).
        assert!(!view.route_is_live(5, 0, &Route::new(vec![0, 2])).unwrap());
    }

    #[test]
    fn validation_rejects_mismatched_topologies() {
        let x = two_level(4);
        let other = Xgft::new(XgftSpec::slimmed_two_level(4, 2).unwrap()).unwrap();
        let f = FaultSet::none(&x);
        assert!(f.validate(&x).is_ok());
        assert!(f.validate(&other).is_err());
        assert!(DegradedXgft::new(&other, &f).is_err());
    }

    #[test]
    #[should_panic(expected = "switch")]
    fn killing_a_leaf_is_rejected() {
        let x = two_level(4);
        let mut f = FaultSet::none(&x);
        f.fail_switch(&x, NodeRef { level: 0, index: 0 });
    }
}
