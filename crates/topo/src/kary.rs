//! k-ary n-tree conveniences.
//!
//! A k-ary n-tree is the most common XGFT instantiation
//! (`XGFT(n; k,…,k; 1,k,…,k)`). This module provides a thin wrapper with the
//! familiar base-`k` arithmetic formulation of node labels and of the
//! S-mod-k / D-mod-k port formula `⌊x / k^{l-1}⌋ mod k`, which the rest of
//! the workspace uses to cross-check the general XGFT machinery.

use crate::spec::XgftSpec;
use crate::topology::Xgft;

/// A k-ary n-tree viewed through its base-`k` arithmetic.
#[derive(Debug, Clone)]
pub struct KAryNTree {
    k: usize,
    n: usize,
    xgft: Xgft,
}

impl KAryNTree {
    /// Build a k-ary n-tree.
    ///
    /// # Panics
    /// Panics if `k == 0` or `n == 0`.
    pub fn new(k: usize, n: usize) -> Self {
        let xgft = Xgft::new(XgftSpec::k_ary_n_tree(k, n)).expect("valid spec");
        KAryNTree { k, n, xgft }
    }

    /// The radix `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The number of levels `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of processing nodes, `k^n`.
    pub fn num_leaves(&self) -> usize {
        self.xgft.num_leaves()
    }

    /// Number of switches, `n · k^(n-1)`.
    pub fn num_switches(&self) -> usize {
        self.xgft.num_switches()
    }

    /// The underlying general XGFT object.
    pub fn xgft(&self) -> &Xgft {
        &self.xgft
    }

    /// Consume the wrapper and return the XGFT.
    pub fn into_xgft(self) -> Xgft {
        self.xgft
    }

    /// The classic S-mod-k / D-mod-k port formula: the up-port used when
    /// moving from level `l − 1` to level `l` (1-based `l`) guided by node
    /// number `x` is `⌊x / k^(l-1)⌋ mod k`.
    pub fn mod_k_port(&self, x: usize, l: usize) -> usize {
        debug_assert!(l >= 1 && l <= self.n);
        (x / self.k.pow((l - 1) as u32)) % self.k
    }

    /// The base-`k` digit of `x` at position `pos` (1-based, least
    /// significant first). Identical to [`KAryNTree::mod_k_port`] but named
    /// for label arithmetic.
    pub fn digit(&self, x: usize, pos: usize) -> usize {
        self.mod_k_port(x, pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_closed_forms() {
        let t = KAryNTree::new(4, 3);
        assert_eq!(t.num_leaves(), 64);
        assert_eq!(t.num_switches(), 3 * 16);
        assert_eq!(t.k(), 4);
        assert_eq!(t.n(), 3);
    }

    #[test]
    fn mod_k_port_equals_label_digit() {
        let t = KAryNTree::new(4, 3);
        for leaf in 0..t.num_leaves() {
            for l in 1..=3 {
                assert_eq!(
                    t.mod_k_port(leaf, l),
                    t.xgft().leaf_digit(leaf, l),
                    "leaf {leaf}, level {l}"
                );
            }
        }
    }

    #[test]
    fn digit_alias() {
        let t = KAryNTree::new(2, 4);
        assert_eq!(t.digit(0b1011, 1), 1);
        assert_eq!(t.digit(0b1011, 2), 1);
        assert_eq!(t.digit(0b1011, 3), 0);
        assert_eq!(t.digit(0b1011, 4), 1);
    }

    #[test]
    fn into_xgft_preserves_spec() {
        let t = KAryNTree::new(8, 2);
        let x = t.into_xgft();
        assert_eq!(x.spec().to_string(), "XGFT(2;8,8;1,8)");
    }
}
