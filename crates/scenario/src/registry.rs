//! The built-in scenario registry: every figure, table, campaign and fault
//! experiment of the reproduction, as named entries over the shared
//! [`ExperimentArgs`] flag set.
//!
//! Grid-shaped experiments (fig2/fig5 sweeps, Fig. 4 distributions, seed
//! campaigns, fault campaigns) build a [`ScenarioSpec`] and go through
//! [`crate::runner::run_scenario`] — `registry::spec_for` exposes the exact
//! spec an entry would run, which is also what `xgft run <file>` consumes.
//! Report-shaped experiments (Table I, Fig. 1, Fig. 3, the Sec. VII
//! analyses) call their `xgft_analysis::experiments` driver directly; their
//! logic lives here, not in any binary.

use crate::args::{scale_bytes, ExperimentArgs};
use crate::runner::{run_scenario, shard_summary, ResultPayload, RunOptions, ScenarioResult};
use crate::spec::{
    ChaosSpec, EngineSpec, FaultSpec, RepresentationSpec, ScenarioSpec, SchemeSpec, SeedSpec,
    SweepSpec, TopologySpec, WorkloadSpec, SPEC_SCHEMA_VERSION,
};
use xgft_analysis::experiments::{ablation, equivalence, fig1, fig3, fig5, flow_mcl, table1};
use xgft_analysis::AlgorithmSpec;
use xgft_netsim::NetworkConfig;
use xgft_patterns::generators;
use xgft_topo::XgftSpec;

/// What an entry produced, ready for the CLI to print. (Pre-run progress
/// headers of long campaigns go straight to stderr as the run starts, not
/// through this struct — see [`shard_summary`].)
#[derive(Debug, Clone, Default)]
pub struct EntryOutput {
    /// The human-readable report.
    pub stdout: String,
    /// Pretty JSON, when the entry produces a serializable result.
    pub json: Option<String>,
    /// Under `--json`, route `stdout` to stderr so piped output is pure
    /// JSON (the historical `campaign`/`faults` contract).
    pub json_owns_stdout: bool,
}

/// Why an entry failed — determines the process exit code.
#[derive(Debug, Clone)]
pub enum EntryError {
    /// Bad input: flag contract violated, invalid spec (exit code 2).
    Usage(String),
    /// A failure after a valid invocation, e.g. a paper-claim check that
    /// did not hold (exit code 1).
    Runtime(String),
}

impl std::fmt::Display for EntryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntryError::Usage(msg) | EntryError::Runtime(msg) => f.write_str(msg),
        }
    }
}

/// One built-in experiment.
pub struct RegistryEntry {
    /// The `xgft <name>` the entry answers to.
    pub name: &'static str,
    /// Legacy binary names that forward here.
    pub aliases: &'static [&'static str],
    /// One-line description for `xgft list`.
    pub about: &'static str,
    /// Run with the shared flag set.
    pub run: fn(&ExperimentArgs) -> Result<EntryOutput, EntryError>,
}

/// The registry, in the paper's presentation order.
pub fn registry() -> &'static [RegistryEntry] {
    &[
        RegistryEntry {
            name: "table1",
            aliases: &[],
            about: "Table I: node/link labeling, counts and Eq. (1)",
            run: run_table1,
        },
        RegistryEntry {
            name: "fig1",
            aliases: &["fig1_topologies"],
            about: "Fig. 1: example XGFT instantiations",
            run: run_fig1,
        },
        RegistryEntry {
            name: "fig2_wrf",
            aliases: &[],
            about: "Fig. 2(a): WRF-256 under classic oblivious routings",
            run: |args| run_fig_sweep("fig2_wrf", args),
        },
        RegistryEntry {
            name: "fig2_cg",
            aliases: &[],
            about: "Fig. 2(b): CG.D-128 under classic oblivious routings",
            run: |args| run_fig_sweep("fig2_cg", args),
        },
        RegistryEntry {
            name: "fig3",
            aliases: &["fig3_cg_pattern"],
            about: "Fig. 3: the CG.D-128 traffic pattern",
            run: run_fig3,
        },
        RegistryEntry {
            name: "fig4",
            aliases: &["fig4_nca_distribution"],
            about: "Fig. 4: routes-per-NCA distributions (w2 = 16 and 10)",
            run: |args| run_scenario_entry("fig4", args),
        },
        RegistryEntry {
            name: "fig5_wrf",
            aliases: &[],
            about: "Fig. 5(a): WRF-256 under the proposed r-NCA schemes",
            run: |args| run_fig_sweep("fig5_wrf", args),
        },
        RegistryEntry {
            name: "fig5_cg",
            aliases: &[],
            about: "Fig. 5(b): CG.D-128 under the proposed r-NCA schemes",
            run: |args| run_fig_sweep("fig5_cg", args),
        },
        RegistryEntry {
            name: "equivalence",
            aliases: &["sec7_equivalence"],
            about: "Sec. VII-B/C: S-mod-k / D-mod-k duality over permutations",
            run: run_equivalence,
        },
        RegistryEntry {
            name: "ablation",
            aliases: &["ablation_relabeling"],
            about: "Relabeling ablation: balanced vs unbalanced random maps",
            run: run_ablation,
        },
        RegistryEntry {
            name: "synthetic",
            aliases: &["synthetic_patterns"],
            about: "Synthetic permutations: contention on full/slimmed trees",
            run: run_synthetic,
        },
        RegistryEntry {
            name: "flow_mcl",
            aliases: &[],
            about: "Analytical MCL sweeps + netsim cross-validation",
            run: run_flow_mcl,
        },
        RegistryEntry {
            name: "campaign",
            aliases: &[],
            about: "Parallel seed campaign over the slimming family (--k scales)",
            run: |args| run_scenario_entry("campaign", args),
        },
        RegistryEntry {
            name: "faults",
            aliases: &[],
            about: "Resilience campaign: scheme x failure-rate x seed on degraded machines",
            run: |args| run_scenario_entry("faults", args),
        },
        RegistryEntry {
            name: "chaos",
            aliases: &[],
            about: "Chaos lab: time-varying fault/repair timeline with per-epoch SLA metrics",
            run: |args| run_scenario_entry("chaos", args),
        },
    ]
}

/// Look an entry up by name or legacy alias.
pub fn find(name: &str) -> Option<&'static RegistryEntry> {
    registry()
        .iter()
        .find(|e| e.name == name || e.aliases.contains(&name))
}

fn figure2_schemes() -> Vec<SchemeSpec> {
    AlgorithmSpec::figure2_set()
        .into_iter()
        .map(SchemeSpec)
        .collect()
}

fn figure5_schemes() -> Vec<SchemeSpec> {
    AlgorithmSpec::figure5_set()
        .into_iter()
        .map(SchemeSpec)
        .collect()
}

/// The spec a scenario-backed registry entry runs for the given flags.
/// `None` for report-shaped entries (they have no grid to describe).
pub fn spec_for(name: &str, args: &ExperimentArgs) -> Option<Result<ScenarioSpec, String>> {
    let engine = if args.analytic {
        EngineSpec::Flow
    } else {
        EngineSpec::Tracesim
    };
    let spec = match name {
        "fig2_wrf" | "fig5_wrf" => ScenarioSpec {
            schema_version: SPEC_SCHEMA_VERSION,
            name: name.to_string(),
            topology: TopologySpec::SlimmedTwoLevel { k: 16, w2: 16 },
            workload: WorkloadSpec::new(
                "wrf",
                256,
                scale_bytes(generators::WRF_DEFAULT_BYTES, args.byte_scale),
            ),
            schemes: if name == "fig2_wrf" {
                figure2_schemes()
            } else {
                figure5_schemes()
            },
            engine,
            representation: RepresentationSpec::Compiled,
            faults: FaultSpec::None,
            chaos: None,
            sweep: SweepSpec::over(args.w2_sweep()),
            seeds: SeedSpec::List {
                seeds: args.seed_list(),
            },
            network: NetworkConfig::default(),
        },
        "fig2_cg" | "fig5_cg" => ScenarioSpec {
            schema_version: SPEC_SCHEMA_VERSION,
            name: name.to_string(),
            topology: TopologySpec::SlimmedTwoLevel { k: 16, w2: 16 },
            workload: WorkloadSpec::new(
                "cg",
                128,
                scale_bytes(generators::CG_D_PHASE_BYTES, args.byte_scale),
            ),
            schemes: if name == "fig2_cg" {
                figure2_schemes()
            } else {
                figure5_schemes()
            },
            engine,
            representation: RepresentationSpec::Compiled,
            faults: FaultSpec::None,
            chaos: None,
            sweep: SweepSpec::over(args.w2_sweep()),
            seeds: SeedSpec::List {
                seeds: args.seed_list(),
            },
            network: NetworkConfig::default(),
        },
        "fig4" => ScenarioSpec {
            schema_version: SPEC_SCHEMA_VERSION,
            name: "fig4".to_string(),
            topology: TopologySpec::SlimmedTwoLevel { k: 16, w2: 16 },
            // Fig. 4 is a pure routing metric; the workload is irrelevant
            // but the spec records the paper's context.
            workload: WorkloadSpec::new(
                "wrf",
                256,
                scale_bytes(generators::WRF_DEFAULT_BYTES, args.byte_scale),
            ),
            schemes: figure5_schemes(),
            engine: EngineSpec::Nca,
            representation: RepresentationSpec::Compiled,
            faults: FaultSpec::None,
            chaos: None,
            sweep: SweepSpec::over(args.w2_values.clone().unwrap_or_else(|| vec![16, 10])),
            seeds: SeedSpec::List {
                seeds: args.seed_list(),
            },
            network: NetworkConfig::default(),
        },
        "campaign" => {
            let workload =
                match WorkloadSpec::named_for_machine(&args.workload, args.k, args.byte_scale) {
                    Ok(w) => w,
                    Err(e) => return Some(Err(e)),
                };
            ScenarioSpec {
                schema_version: SPEC_SCHEMA_VERSION,
                name: format!("campaign-{}-k{}", args.workload, args.k),
                topology: TopologySpec::SlimmedTwoLevel {
                    k: args.k,
                    w2: args.k,
                },
                workload,
                schemes: figure5_schemes(),
                engine: EngineSpec::Tracesim,
                representation: RepresentationSpec::Compiled,
                faults: FaultSpec::None,
                chaos: None,
                sweep: SweepSpec::over(args.w2_sweep_for_k()),
                seeds: SeedSpec::Stream {
                    base_seed: args.base_seed,
                    seeds_per_point: args.seeds,
                },
                network: NetworkConfig::default(),
            }
        }
        "faults" => {
            let workload =
                match WorkloadSpec::named_for_machine(&args.workload, args.k, args.byte_scale) {
                    Ok(w) => w,
                    Err(e) => return Some(Err(e)),
                };
            // One campaign is one machine: --w2 picks a single slimming point.
            let w2 = match args.w2_values.as_deref() {
                None => args.k,
                Some([w2]) => *w2,
                Some(_) => {
                    return Some(Err(
                        "faults runs one machine per campaign; pass a single --w2 value"
                            .to_string(),
                    ))
                }
            };
            // 0%, 1%, 5% for the smoke budget; the default run adds 2% and 10%.
            let permille: Vec<u32> = if args.quick {
                vec![0, 10, 50]
            } else {
                vec![0, 10, 20, 50, 100]
            };
            ScenarioSpec {
                schema_version: SPEC_SCHEMA_VERSION,
                name: format!("faults-{}-k{}-w{}", args.workload, args.k, w2),
                topology: TopologySpec::SlimmedTwoLevel { k: args.k, w2 },
                workload,
                schemes: vec![
                    SchemeSpec(AlgorithmSpec::SModK),
                    SchemeSpec(AlgorithmSpec::DModK),
                    SchemeSpec(AlgorithmSpec::Random),
                    SchemeSpec(AlgorithmSpec::RandomNcaUp),
                    SchemeSpec(AlgorithmSpec::RandomNcaDown),
                ],
                engine: EngineSpec::Tracesim,
                representation: RepresentationSpec::Compiled,
                faults: FaultSpec::UniformLinks {
                    permille,
                    draws_per_point: args.seeds,
                },
                chaos: None,
                sweep: SweepSpec::none(),
                seeds: SeedSpec::Stream {
                    base_seed: args.base_seed,
                    seeds_per_point: args.seeds,
                },
                network: NetworkConfig::default(),
            }
        }
        "chaos" => {
            let workload =
                match WorkloadSpec::named_for_machine(&args.workload, args.k, args.byte_scale) {
                    Ok(w) => w,
                    Err(e) => return Some(Err(e)),
                };
            // One chaos lab is one machine: --w2 picks a single slimming point.
            let w2 = match args.w2_values.as_deref() {
                None => args.k,
                Some([w2]) => *w2,
                Some(_) => {
                    return Some(Err(
                        "chaos runs one machine per campaign; pass a single --w2 value".to_string(),
                    ))
                }
            };
            ScenarioSpec {
                schema_version: SPEC_SCHEMA_VERSION,
                name: format!("chaos-{}-k{}-w{}", args.workload, args.k, w2),
                topology: TopologySpec::SlimmedTwoLevel { k: args.k, w2 },
                workload,
                schemes: vec![
                    SchemeSpec(AlgorithmSpec::SModK),
                    SchemeSpec(AlgorithmSpec::DModK),
                    SchemeSpec(AlgorithmSpec::Random),
                    SchemeSpec(AlgorithmSpec::RandomNcaUp),
                    SchemeSpec(AlgorithmSpec::RandomNcaDown),
                ],
                engine: EngineSpec::Netsim,
                representation: RepresentationSpec::Compiled,
                faults: FaultSpec::None,
                chaos: Some(ChaosSpec {
                    epochs: if args.quick { 4 } else { 12 },
                    epoch_ps: 40_000_000,
                    link_fail_permille: 100,
                    switch_kill_permille: 250,
                    cable_cut_permille: 250,
                    repair_epochs: 1,
                }),
                sweep: SweepSpec::none(),
                seeds: SeedSpec::Stream {
                    base_seed: args.base_seed,
                    seeds_per_point: args.seeds,
                },
                network: NetworkConfig::default(),
            }
        }
        _ => return None,
    };
    Some(Ok(spec))
}

/// Run a scenario-backed entry: build the spec, announce long campaigns
/// on stderr *before* running (so a multi-minute campaign is never
/// silent), run, shape the output.
fn run_scenario_entry(name: &str, args: &ExperimentArgs) -> Result<EntryOutput, EntryError> {
    let spec = spec_for(name, args)
        .expect("scenario-backed entry")
        .map_err(EntryError::Usage)?;
    if let Some(header) = shard_summary(&spec) {
        eprintln!("{header}");
    }
    let result = run_scenario(&spec, &RunOptions::default())
        .map_err(|e| EntryError::Usage(e.to_string()))?;
    Ok(shape_scenario_output(&result))
}

/// Figure sweeps print claims (fig5) after the table.
fn run_fig_sweep(name: &str, args: &ExperimentArgs) -> Result<EntryOutput, EntryError> {
    let spec = spec_for(name, args)
        .expect("scenario-backed entry")
        .map_err(EntryError::Usage)?;
    let result = run_scenario(&spec, &RunOptions::default())
        .map_err(|e| EntryError::Usage(e.to_string()))?;
    let mut output = shape_scenario_output(&result);
    if name.starts_with("fig5") {
        if let ResultPayload::Sweep(sweep) = &result.payload {
            output
                .stdout
                .push_str(&fig5::Fig5Claims::evaluate(sweep).render());
        }
    }
    Ok(output)
}

/// The common output shape of scenario-backed entries: the payload's text
/// table on stdout, the full versioned envelope as JSON (owning stdout
/// under `--json` for the campaign/resilience payloads).
fn shape_scenario_output(result: &ScenarioResult) -> EntryOutput {
    let json_owns_stdout = matches!(
        result.payload,
        ResultPayload::Campaign(_) | ResultPayload::Resilience(_) | ResultPayload::Chaos(_)
    );
    EntryOutput {
        stdout: result.render(),
        json: Some(to_json(result)),
        json_owns_stdout,
    }
}

fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("serialisable")
}

// ------------------------------------------------- report-shaped entries

fn run_table1(_args: &ExperimentArgs) -> Result<EntryOutput, EntryError> {
    let specs = vec![
        XgftSpec::slimmed_two_level(16, 16).expect("valid"),
        XgftSpec::slimmed_two_level(16, 10).expect("valid"),
        XgftSpec::slimmed_two_level(16, 1).expect("valid"),
        XgftSpec::k_ary_n_tree(4, 3),
        XgftSpec::new(vec![4, 4, 4], vec![1, 2, 2]).expect("valid"),
    ];
    let mut stdout = String::new();
    let mut results = Vec::new();
    for spec in &specs {
        let result = table1::run(spec);
        stdout.push_str(&result.render());
        stdout.push('\n');
        if result.inner_switches != result.inner_switches_by_sum {
            return Err(EntryError::Runtime(format!(
                "Eq. (1) mismatch on {spec}: {} vs {}",
                result.inner_switches, result.inner_switches_by_sum
            )));
        }
        results.push(result);
    }
    stdout.push_str(&format!(
        "Eq. (1) validated for {} topologies.\n",
        specs.len()
    ));
    Ok(EntryOutput {
        json: Some(to_json(&results)),
        stdout,
        ..EntryOutput::default()
    })
}

fn run_fig1(_args: &ExperimentArgs) -> Result<EntryOutput, EntryError> {
    let result = fig1::run();
    Ok(EntryOutput {
        stdout: format!("{}\n", result.render()),
        json: Some(to_json(&result)),
        ..EntryOutput::default()
    })
}

fn run_fig3(_args: &ExperimentArgs) -> Result<EntryOutput, EntryError> {
    let result = fig3::run(128, 750 * 1024);
    Ok(EntryOutput {
        stdout: format!("{}\n", result.render()),
        json: Some(to_json(&result)),
        ..EntryOutput::default()
    })
}

fn run_equivalence(args: &ExperimentArgs) -> Result<EntryOutput, EntryError> {
    // Sample count scales with --seeds so --quick stays fast.
    let samples = (args.seeds * 10).max(20);
    let mut stdout = String::new();
    let mut results = Vec::new();
    for w2 in [16usize, 10, 4] {
        let result = equivalence::run(16, w2, samples, 2009);
        stdout.push_str(&result.render());
        stdout.push('\n');
        results.push(result);
    }
    Ok(EntryOutput {
        json: Some(to_json(&results)),
        stdout,
        ..EntryOutput::default()
    })
}

fn run_ablation(args: &ExperimentArgs) -> Result<EntryOutput, EntryError> {
    let seeds = args.seed_list();
    let mut stdout = String::new();
    let mut results = Vec::new();
    for w2 in [16usize, 10, 6] {
        let result = ablation::run(16, w2, &seeds);
        stdout.push_str(&result.render());
        stdout.push('\n');
        results.push(result);
    }
    Ok(EntryOutput {
        json: Some(to_json(&results)),
        stdout,
        ..EntryOutput::default()
    })
}

fn run_synthetic(args: &ExperimentArgs) -> Result<EntryOutput, EntryError> {
    use xgft_analysis::experiments::synthetic;
    let seeds = args.seed_list();
    let mut stdout = String::new();
    let mut results = Vec::new();
    for w2 in [16usize, 10, 4] {
        let result = synthetic::run(16, w2, &seeds);
        stdout.push_str(&result.render());
        stdout.push('\n');
        results.push(result);
    }
    Ok(EntryOutput {
        json: Some(to_json(&results)),
        stdout,
        ..EntryOutput::default()
    })
}

fn run_flow_mcl(args: &ExperimentArgs) -> Result<EntryOutput, EntryError> {
    use std::time::Instant;
    use xgft_core::RandomRouting;
    use xgft_flow::{ExpectedLoads, TrafficMatrix, TrafficSpec};
    use xgft_topo::Xgft;

    let mut stdout = String::new();

    // 1. The analytical slimming sweep, uniform all-pairs traffic.
    let config = flow_mcl::FlowMclConfig::new(args.w2_sweep());
    let result = config.run();
    stdout.push_str(&result.render_table());
    stdout.push('\n');

    // 2. The same sweep under a pattern family (cyclic shift by one
    // switch), showing the congestion ratios pattern structure induces.
    let shifted = flow_mcl::FlowMclConfig {
        traffic: TrafficSpec::Shift { offset: 16 },
        ..flow_mcl::FlowMclConfig::new(args.w2_sweep())
    };
    stdout.push_str(&shifted.run().render_table());
    stdout.push('\n');

    // 3. Cross-validation: seed-averaged netsim utilization vs the model.
    let xgft =
        Xgft::new(XgftSpec::slimmed_two_level(8, 5).expect("valid")).expect("valid topology");
    let n = xgft.num_leaves();
    let flows: Vec<(usize, usize)> = (0..n)
        .flat_map(|s| (0..n).map(move |d| (s, d)))
        .filter(|&(s, d)| s != d)
        .collect();
    let cv = flow_mcl::cross_validate_mcl(
        &xgft,
        |seed| Box::new(RandomRouting::new(seed)),
        &flows,
        &args.seed_list(),
        1024,
    );
    stdout.push_str(&format!(
        "cross-validation on {} ({} seeds): model MCL {:.1}, netsim {:.1} ({:.1}% off, worst channel {:.1}%)\n\n",
        xgft.spec(),
        args.seeds,
        cv.model_mcl,
        cv.measured_mcl,
        cv.mcl_relative_error * 100.0,
        cv.max_channel_deviation * 100.0
    ));

    // 4. The scale demo: closed-form MCL on machines netsim cannot replay.
    if !args.quick {
        for (spec, scheme) in flow_mcl::large_instance_demo() {
            let start = Instant::now();
            let xgft = Xgft::new(spec.clone()).expect("valid spec");
            let traffic = TrafficMatrix::uniform(xgft.num_leaves());
            let algo = scheme.instantiate(&xgft, &TrafficSpec::Uniform);
            let loads = ExpectedLoads::compute(&xgft, algo.as_ref(), &traffic);
            stdout.push_str(&format!(
                "{} x {}: {} leaves, {} channels, MCL {:.0} in {:.1} ms\n",
                spec,
                scheme.name(),
                xgft.num_leaves(),
                xgft.channels().len(),
                loads.mcl(),
                start.elapsed().as_secs_f64() * 1e3
            ));
        }
    }

    Ok(EntryOutput {
        json: Some(to_json(&result)),
        stdout,
        ..EntryOutput::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_args() -> ExperimentArgs {
        ExperimentArgs::parse_from(["--quick".to_string()]).unwrap()
    }

    #[test]
    fn every_entry_is_findable_and_named_uniquely() {
        let entries = registry();
        assert_eq!(entries.len(), 15);
        let mut names: Vec<&str> = entries.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15, "duplicate registry names");
        // Legacy binary names resolve too.
        for alias in [
            "fig1_topologies",
            "fig3_cg_pattern",
            "fig4_nca_distribution",
            "sec7_equivalence",
            "ablation_relabeling",
            "synthetic_patterns",
        ] {
            assert!(find(alias).is_some(), "{alias}");
        }
        assert!(find("bogus").is_none());
    }

    #[test]
    fn scenario_backed_entries_expose_their_specs() {
        let args = quick_args();
        for name in [
            "fig2_wrf", "fig2_cg", "fig4", "fig5_wrf", "fig5_cg", "campaign", "faults", "chaos",
        ] {
            let spec = spec_for(name, &args)
                .unwrap_or_else(|| panic!("{name} should be scenario-backed"))
                .unwrap();
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(spec_for("table1", &args).is_none());
        // The analytic flag flips the engine.
        let mut analytic = quick_args();
        analytic.analytic = true;
        let spec = spec_for("fig2_wrf", &analytic).unwrap().unwrap();
        assert_eq!(spec.engine, EngineSpec::Flow);
    }

    #[test]
    fn faults_flag_contract_is_enforced() {
        let mut args = quick_args();
        args.w2_values = Some(vec![4, 2]);
        assert!(spec_for("faults", &args).unwrap().is_err());
        args.w2_values = Some(vec![10]);
        let spec = spec_for("faults", &args).unwrap().unwrap();
        assert_eq!(
            spec.topology,
            TopologySpec::SlimmedTwoLevel { k: 16, w2: 10 }
        );
        args.workload = "bogus".to_string();
        assert!(spec_for("faults", &args).unwrap().is_err());
    }

    #[test]
    fn report_entries_run_and_emit_json() {
        let args = quick_args();
        for name in ["table1", "fig1", "fig3"] {
            let entry = find(name).unwrap();
            let out = (entry.run)(&args).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!out.stdout.is_empty(), "{name}");
            assert!(out.json.is_some(), "{name} must support --json");
            assert!(!out.json_owns_stdout, "{name}");
        }
    }
}
